"""Grounding first-order formulas over a finite domain and a small SAT search.

Certain-answer semantics quantifies over *all* models of the ontology that
extend the data.  Over a fixed finite domain this becomes a propositional
problem: ground every quantifier over the domain, treat ground facts as
propositional variables, and search for a truth assignment satisfying the
ontology, the data, and the negation of the query.  This is the machinery
behind :class:`repro.omq.bounded.BoundedModelEngine` and the first-order
OMQs of Theorem 3.17 — a genuinely usable counter-model finder, unlike naive
enumeration of all fact subsets.

The ground formulas (always in negation normal form) are Tseitin-encoded and
handed to the shared CDCL solver of :mod:`repro.engine.sat`, replacing the
formula-substitution backtracking search the seed implementation used.

Ground formulas are plain nested tuples:

* ``("lit", fact, positive)`` — a (possibly negated) ground fact;
* ``("and", children)`` / ``("or", children)`` — propositional connectives;
* ``True`` / ``False`` — constants.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Mapping, Sequence

from ..core.cq import ConjunctiveQuery, UnionOfConjunctiveQueries, Variable
from ..core.instance import Fact, Instance
from .formulas import (
    AndF,
    Equality,
    ExistsF,
    Falsity,
    ForallF,
    Formula,
    Implies,
    NotF,
    OrF,
    RelationalAtom,
    Truth,
)

Element = Hashable
GroundFormula = "bool | tuple"


# ---------------------------------------------------------------------------
# Grounding
# ---------------------------------------------------------------------------


def _resolve(term, assignment: Mapping) -> Element:
    if isinstance(term, Variable):
        if term not in assignment:
            raise KeyError(f"unbound variable {term} during grounding")
        return assignment[term]
    return term


def _simplify_junction(kind: str, children: list) -> GroundFormula:
    absorbing = kind == "or"
    flat = []
    for child in children:
        if child is absorbing:
            return absorbing
        if child is (not absorbing):
            continue
        if isinstance(child, tuple) and child[0] == kind:
            flat.extend(child[1])
            continue
        flat.append(child)
    if not flat:
        return not absorbing
    if len(flat) == 1:
        return flat[0]
    return (kind, tuple(flat))


def ground(
    formula: Formula,
    domain: Sequence[Element],
    assignment: Mapping | None = None,
    positive: bool = True,
) -> GroundFormula:
    """Ground a first-order formula over a finite domain.

    ``positive=False`` grounds the negation (negations are pushed to the
    literals, so the result is always in negation normal form).
    """
    assignment = dict(assignment or {})
    if isinstance(formula, Truth):
        return positive
    if isinstance(formula, Falsity):
        return not positive
    if isinstance(formula, Equality):
        equal = _resolve(formula.left, assignment) == _resolve(formula.right, assignment)
        return equal if positive else not equal
    if isinstance(formula, RelationalAtom):
        fact = Fact(
            formula.relation,
            tuple(_resolve(a, assignment) for a in formula.arguments),
        )
        return ("lit", fact, positive)
    if isinstance(formula, NotF):
        return ground(formula.operand, domain, assignment, not positive)
    if isinstance(formula, AndF):
        kind = "and" if positive else "or"
        children = [ground(c, domain, assignment, positive) for c in formula.conjuncts]
        return _simplify_junction(kind, children)
    if isinstance(formula, OrF):
        kind = "or" if positive else "and"
        children = [ground(c, domain, assignment, positive) for c in formula.disjuncts]
        return _simplify_junction(kind, children)
    if isinstance(formula, Implies):
        rewritten = OrF((NotF(formula.antecedent), formula.consequent))
        return ground(rewritten, domain, assignment, positive)
    if isinstance(formula, (ExistsF, ForallF)):
        existential = isinstance(formula, ExistsF)
        effective_or = existential == positive
        variables = list(formula.variables)
        if variables and not domain:
            # ∃ over the empty domain is false, ∀ is true.
            return not effective_or
        return _ground_quantified(
            formula.body, variables, domain, assignment, positive, effective_or
        )
    raise TypeError(f"cannot ground formula {formula!r}")


def _junction_parts(body: Formula, positive: bool) -> tuple[str | None, list[Formula]]:
    """``body``'s subformulas under its effective top-level junction.

    The junction kind accounts for the polarity the caller will ground with
    (an ``AndF`` grounded negatively behaves as an "or", etc.); non-junction
    bodies return ``(None, [body])``.
    """
    if isinstance(body, NotF):
        # ¬(p1 ∧ p2) splits as ¬p1 ∨ ¬p2: each part is re-wrapped in a
        # negation, cancelling double negations instead of stacking them.
        kind, parts = _junction_parts(body.operand, not positive)
        return kind, [
            part.operand if isinstance(part, NotF) else NotF(part)
            for part in parts
        ]
    if isinstance(body, AndF):
        return ("and" if positive else "or"), list(body.conjuncts)
    if isinstance(body, OrF):
        return ("or" if positive else "and"), list(body.disjuncts)
    if isinstance(body, Implies):
        rewritten = OrF((NotF(body.antecedent), body.consequent))
        return ("or" if positive else "and"), list(rewritten.disjuncts)
    return None, [body]


def _variable_blocks(
    variables: Sequence[Variable], parts: Sequence[Formula]
) -> tuple[list[tuple[list[Variable], list[Formula]]], list[Formula]]:
    """Group ``parts`` into blocks linked by shared quantified variables.

    Returns ``(blocks, hoisted)``: each block pairs its quantified variables
    with the parts mentioning them (transitively), and ``hoisted`` collects
    the parts mentioning no quantified variable at all.
    """
    variable_set = set(variables)
    parent: dict[Variable, Variable] = {v: v for v in variables}

    def find(v: Variable) -> Variable:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    hoisted: list[Formula] = []
    placed: list[tuple[Formula, list[Variable]]] = []
    for part in parts:
        part_vars = [v for v in part.free_variables() if v in variable_set]
        if not part_vars:
            hoisted.append(part)
            continue
        placed.append((part, part_vars))
        for other in part_vars[1:]:
            root_a, root_b = find(part_vars[0]), find(other)
            if root_a != root_b:
                parent[root_a] = root_b
    blocks: dict[Variable, tuple[list[Variable], list[Formula]]] = {}
    for variable in variables:
        root = find(variable)
        if root not in blocks:
            blocks[root] = ([], [])
        blocks[root][0].append(variable)
    for part, part_vars in placed:
        blocks[find(part_vars[0])][1].append(part)
    ordered = sorted(
        (block for block in blocks.values() if block[1]),
        key=lambda block: str(block[0][0]),
    )
    return ordered, hoisted


def _ground_quantified(
    body: Formula,
    variables: Sequence[Variable],
    domain: Sequence[Element],
    assignment: Mapping,
    positive: bool,
    effective_or: bool,
) -> GroundFormula:
    """Ground ``Q variables . body`` by miniscoping instead of ``domain**k``.

    The quantifier block is distributed over the body's junction where the
    quantifier commutes with it, and split across variable-disjoint
    components where it does not (``∃x̄ (φ1 ∧ φ2) ≡ ∃x̄1 φ1 ∧ ∃x̄2 φ2`` when
    ``φ1, φ2`` share no quantified variable, dually for ``∀``/``∨``) — the
    same co-occurrence analysis the engine's join planner performs on rule
    bodies.  Only the variables of a connected component are enumerated
    together, so the grounding is ``Σ |domain|^ki`` instead of
    ``|domain|^(k1+...+km)``.
    """
    kind = "or" if effective_or else "and"
    relevant = body.free_variables()
    needed = [v for v in variables if v in relevant]
    if not needed:
        # The domain is non-empty here (the caller handled the empty case),
        # so vacuous quantification does not change the truth value.
        return ground(body, domain, assignment, positive)
    inner_kind, parts = _junction_parts(body, positive)
    if len(parts) > 1 and inner_kind == kind:
        # The quantifier commutes with the junction: distribute it.
        children = []
        for part in parts:
            child = _ground_quantified(
                part, needed, domain, assignment, positive, effective_or
            )
            if child is (kind == "or"):
                return kind == "or"
            children.append(child)
        return _simplify_junction(kind, children)
    if len(parts) > 1 and inner_kind is not None:
        blocks, hoisted = _variable_blocks(needed, parts)
        if len(blocks) > 1 or hoisted:
            children = [ground(part, domain, assignment, positive) for part in hoisted]
            for block_variables, block_parts in blocks:
                child = _enumerate_block(
                    block_parts,
                    block_variables,
                    domain,
                    assignment,
                    positive,
                    kind,
                    inner_kind,
                )
                children.append(child)
            return _simplify_junction(inner_kind, children)
    # A single connected component: plain enumeration over its variables.
    return _enumerate_block(
        parts, needed, domain, assignment, positive, kind, inner_kind or kind
    )


def _enumerate_block(
    parts: Sequence[Formula],
    variables: Sequence[Variable],
    domain: Sequence[Element],
    assignment: Mapping,
    positive: bool,
    kind: str,
    inner_kind: str,
) -> GroundFormula:
    """Enumerate one variable block: ``kind`` over assignments of the
    ``inner_kind``-junction of the parts' groundings."""
    children = []
    for values in itertools.product(domain, repeat=len(variables)):
        extended = dict(assignment)
        extended.update(zip(variables, values))
        grounded = [ground(part, domain, extended, positive) for part in parts]
        child = _simplify_junction(inner_kind, grounded)
        if child is (kind == "or"):
            return kind == "or"
        children.append(child)
    return _simplify_junction(kind, children)


def ground_cq(
    query: ConjunctiveQuery,
    domain: Sequence[Element],
    answer: Sequence[Element],
    positive: bool = True,
) -> GroundFormula:
    """Ground ``q(answer)`` (or its negation) over the domain.

    The existential variables are enumerated per connected component of the
    query's atom graph (atoms linked by shared existential variables), not
    as one flat ``domain ** k`` product: ``∃ȳ (C1 ∧ C2)`` with
    variable-disjoint ``C1, C2`` factors into ``∃ȳ1 C1 ∧ ∃ȳ2 C2``, dually
    for the negation.  Atoms without existential variables are grounded
    once, outside any enumeration.
    """
    assignment = dict(zip(query.answer_variables, answer))
    existential_set = query.variables - set(query.answer_variables)
    atoms = sorted(query.atoms, key=str)
    conjunction = "and" if positive else "or"  # junction of (negated) atoms
    quantifier = "or" if positive else "and"  # junction over assignments

    def literal(atom, values: Mapping) -> tuple:
        fact = Fact(
            atom.relation, tuple(_resolve(a, values) for a in atom.arguments)
        )
        return ("lit", fact, positive)

    bound_atoms = [a for a in atoms if not set(a.variables) & existential_set]
    parts: list = [literal(atom, assignment) for atom in bound_atoms]
    linked_atoms = [a for a in atoms if set(a.variables) & existential_set]
    for component_vars, component_atoms in _atom_components(
        sorted(existential_set, key=str), linked_atoms, existential_set
    ):
        children = []
        for values in itertools.product(domain, repeat=len(component_vars)):
            extended = dict(assignment)
            extended.update(zip(component_vars, values))
            lits = [literal(atom, extended) for atom in component_atoms]
            children.append(_simplify_junction(conjunction, lits))
        parts.append(_simplify_junction(quantifier, children))
    return _simplify_junction(conjunction, parts)


def _atom_components(
    variables: Sequence,
    atoms: Sequence,
    existential_set: frozenset,
) -> list[tuple[list, list]]:
    """Connected components of query atoms under shared existential variables."""
    parent = {v: v for v in variables}

    def find(v):
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    placed = []
    for atom in atoms:
        atom_vars = [v for v in atom.variables if v in existential_set]
        placed.append((atom, atom_vars))
        for other in atom_vars[1:]:
            root_a, root_b = find(atom_vars[0]), find(other)
            if root_a != root_b:
                parent[root_a] = root_b
    components: dict = {}
    for variable in variables:
        root = find(variable)
        components.setdefault(root, ([], []))[0].append(variable)
    for atom, atom_vars in placed:
        components[find(atom_vars[0])][1].append(atom)
    return sorted(
        (c for c in components.values() if c[1]),
        key=lambda c: str(c[0][0]),
    )


def ground_ucq(
    query: UnionOfConjunctiveQueries,
    domain: Sequence[Element],
    answer: Sequence[Element],
    positive: bool = True,
) -> GroundFormula:
    """Ground a UCQ at a candidate answer (or its negation)."""
    kind = "or" if positive else "and"
    children = [ground_cq(cq, domain, answer, positive) for cq in query.disjuncts]
    return _simplify_junction(kind, children)


# ---------------------------------------------------------------------------
# Propositional search over ground formulas
# ---------------------------------------------------------------------------


def _substitute(formula: GroundFormula, assignment: Mapping[Fact, bool]) -> GroundFormula:
    if isinstance(formula, bool):
        return formula
    kind = formula[0]
    if kind == "lit":
        _tag, fact, positive = formula
        if fact in assignment:
            return assignment[fact] if positive else not assignment[fact]
        return formula
    children = [_substitute(child, assignment) for child in formula[1]]
    return _simplify_junction(kind, children)


def satisfying_assignment(
    constraints: Iterable[GroundFormula],
    forced: Mapping[Fact, bool] | None = None,
) -> dict[Fact, bool] | None:
    """A truth assignment over ground facts satisfying every constraint, or None.

    The constraints are Tseitin-encoded into clauses and solved by the
    engine's CDCL solver; the forced facts become unit assumptions.  Facts
    not mentioned by the returned assignment are "don't care"; callers that
    need a concrete instance may treat them as false.
    """
    from ..engine.sat import TseitinAux, solver_for_clauses, tseitin_clauses

    assignment: dict[Fact, bool] = dict(forced or {})
    formula = _substitute(_simplify_junction("and", list(constraints)), assignment)
    if formula is False:
        return None
    if formula is True:
        return assignment
    clauses = tseitin_clauses(
        formula[1] if formula[0] == "and" else [formula]
    )
    if clauses is None:
        return None
    solver = solver_for_clauses(clauses)
    if not solver.solve():
        return None
    for atom, value in solver.last_model.items():
        if not isinstance(atom, TseitinAux):
            assignment[atom] = value
    return assignment


def model_from_assignment(
    assignment: Mapping[Fact, bool], base: Instance
) -> Instance:
    """The instance consisting of the base facts plus every fact set to true."""
    extra = [fact for fact, value in assignment.items() if value]
    return base.with_facts(extra)
