"""First-order formulas over relational schemas.

This lightweight FO syntax tree supports the paper's uses of first-order
logic: the standard translation of DL concepts and ontologies (Table II),
membership tests for the guarded fragment (GFO), the unary-negation fragment
(UNFO) and the guarded-negation fragment (GNFO), and evaluation over finite
instances (used for FO-rewritings in Section 5.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from ..core.cq import Variable
from ..core.instance import Instance
from ..core.schema import RelationSymbol

Element = Hashable


class Formula:
    """Base class for FO formulas."""

    def free_variables(self) -> frozenset[Variable]:
        raise NotImplementedError

    def subformulas(self) -> Iterator["Formula"]:
        yield self
        for child in self.children():
            yield from child.subformulas()

    def children(self) -> tuple["Formula", ...]:
        return ()

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children())

    def relation_symbols(self) -> set[RelationSymbol]:
        result: set[RelationSymbol] = set()
        for sub in self.subformulas():
            if isinstance(sub, RelationalAtom):
                result.add(sub.relation)
        return result

    def is_sentence(self) -> bool:
        return not self.free_variables()

    # -- evaluation ----------------------------------------------------------------

    def evaluate(
        self,
        instance: Instance,
        assignment: Mapping[Variable, Element] | None = None,
        domain: Iterable[Element] | None = None,
    ) -> bool:
        """Evaluate under the active-domain semantics (or a supplied domain)."""
        domain_list = list(domain) if domain is not None else sorted(
            instance.active_domain, key=repr
        )
        return self._eval(instance, dict(assignment or {}), domain_list)

    def answers(self, instance: Instance, answer_variables) -> frozenset[tuple]:
        """All tuples over ``adom(D)`` satisfying the formula (as an FO query)."""
        domain = sorted(instance.active_domain, key=repr)
        result = set()
        for values in itertools.product(domain, repeat=len(answer_variables)):
            assignment = dict(zip(answer_variables, values))
            if self._eval(instance, assignment, domain):
                result.add(values)
        return frozenset(result)

    def _eval(self, instance, assignment, domain) -> bool:
        raise NotImplementedError

    # -- connective sugar -----------------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return AndF((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return OrF((self, other))

    def __invert__(self) -> "Formula":
        return NotF(self)

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, other)


@dataclass(frozen=True)
class RelationalAtom(Formula):
    relation: RelationSymbol
    arguments: tuple

    def free_variables(self) -> frozenset[Variable]:
        return frozenset(a for a in self.arguments if isinstance(a, Variable))

    def __str__(self) -> str:
        return f"{self.relation.name}({', '.join(str(a) for a in self.arguments)})"

    def _eval(self, instance, assignment, domain) -> bool:
        values = tuple(
            assignment[a] if isinstance(a, Variable) else a for a in self.arguments
        )
        return values in instance.tuples(self.relation)


@dataclass(frozen=True)
class Equality(Formula):
    left: object
    right: object

    def free_variables(self) -> frozenset[Variable]:
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Variable)
        )

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"

    def _eval(self, instance, assignment, domain) -> bool:
        left = assignment[self.left] if isinstance(self.left, Variable) else self.left
        right = (
            assignment[self.right] if isinstance(self.right, Variable) else self.right
        )
        return left == right


@dataclass(frozen=True)
class Truth(Formula):
    def free_variables(self) -> frozenset[Variable]:
        return frozenset()

    def __str__(self) -> str:
        return "⊤"

    def _eval(self, instance, assignment, domain) -> bool:
        return True


@dataclass(frozen=True)
class Falsity(Formula):
    def free_variables(self) -> frozenset[Variable]:
        return frozenset()

    def __str__(self) -> str:
        return "⊥"

    def _eval(self, instance, assignment, domain) -> bool:
        return False


@dataclass(frozen=True)
class NotF(Formula):
    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def free_variables(self) -> frozenset[Variable]:
        return self.operand.free_variables()

    def __str__(self) -> str:
        return f"¬({self.operand})"

    def _eval(self, instance, assignment, domain) -> bool:
        return not self.operand._eval(instance, assignment, domain)


@dataclass(frozen=True)
class AndF(Formula):
    conjuncts: tuple[Formula, ...]

    def children(self) -> tuple[Formula, ...]:
        return self.conjuncts

    def free_variables(self) -> frozenset[Variable]:
        return frozenset().union(*(c.free_variables() for c in self.conjuncts)) if self.conjuncts else frozenset()

    def __str__(self) -> str:
        return " ∧ ".join(f"({c})" for c in self.conjuncts) if self.conjuncts else "⊤"

    def _eval(self, instance, assignment, domain) -> bool:
        return all(c._eval(instance, assignment, domain) for c in self.conjuncts)


@dataclass(frozen=True)
class OrF(Formula):
    disjuncts: tuple[Formula, ...]

    def children(self) -> tuple[Formula, ...]:
        return self.disjuncts

    def free_variables(self) -> frozenset[Variable]:
        return frozenset().union(*(c.free_variables() for c in self.disjuncts)) if self.disjuncts else frozenset()

    def __str__(self) -> str:
        return " ∨ ".join(f"({c})" for c in self.disjuncts) if self.disjuncts else "⊥"

    def _eval(self, instance, assignment, domain) -> bool:
        return any(c._eval(instance, assignment, domain) for c in self.disjuncts)


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def free_variables(self) -> frozenset[Variable]:
        return self.antecedent.free_variables() | self.consequent.free_variables()

    def __str__(self) -> str:
        return f"({self.antecedent}) → ({self.consequent})"

    def _eval(self, instance, assignment, domain) -> bool:
        if self.antecedent._eval(instance, assignment, domain):
            return self.consequent._eval(instance, assignment, domain)
        return True


@dataclass(frozen=True)
class ExistsF(Formula):
    variables: tuple[Variable, ...]
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def free_variables(self) -> frozenset[Variable]:
        return self.body.free_variables() - set(self.variables)

    def __str__(self) -> str:
        names = " ".join(str(v) for v in self.variables)
        return f"∃{names} ({self.body})"

    def _eval(self, instance, assignment, domain) -> bool:
        for values in itertools.product(domain, repeat=len(self.variables)):
            extended = dict(assignment)
            extended.update(zip(self.variables, values))
            if self.body._eval(instance, extended, domain):
                return True
        return False


@dataclass(frozen=True)
class ForallF(Formula):
    variables: tuple[Variable, ...]
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def free_variables(self) -> frozenset[Variable]:
        return self.body.free_variables() - set(self.variables)

    def __str__(self) -> str:
        names = " ".join(str(v) for v in self.variables)
        return f"∀{names} ({self.body})"

    def _eval(self, instance, assignment, domain) -> bool:
        for values in itertools.product(domain, repeat=len(self.variables)):
            extended = dict(assignment)
            extended.update(zip(self.variables, values))
            if not self.body._eval(instance, extended, domain):
                return False
        return True


# -- convenience constructors ------------------------------------------------------


def atom(name: str, *args, arity: int | None = None) -> RelationalAtom:
    relation = RelationSymbol(name, arity if arity is not None else len(args))
    return RelationalAtom(relation, tuple(args))


def exists(variables, body: Formula) -> ExistsF:
    if isinstance(variables, Variable):
        variables = (variables,)
    return ExistsF(tuple(variables), body)


def forall(variables, body: Formula) -> ForallF:
    if isinstance(variables, Variable):
        variables = (variables,)
    return ForallF(tuple(variables), body)


def conjunction(parts: Iterable[Formula]) -> Formula:
    parts = tuple(parts)
    if not parts:
        return Truth()
    if len(parts) == 1:
        return parts[0]
    return AndF(parts)


def disjunction(parts: Iterable[Formula]) -> Formula:
    parts = tuple(parts)
    if not parts:
        return Falsity()
    if len(parts) == 1:
        return parts[0]
    return OrF(parts)
