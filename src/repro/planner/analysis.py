"""Structural analysis of compiled DDlog programs for the tiered planner.

The paper's classification results (Section 5, and the dichotomy discussion
of Theorems 5.15/5.16) say that many ontology-mediated queries are much
easier than the generic coNP certain-answer problem: some are equivalent to
UCQs (FO-rewritable), some to plain datalog, and only the rest genuinely
need disjunction.  This module provides the *syntactic* counterpart the
planner acts on, for an already-compiled disjunctive datalog program:

* :func:`analyse_program` — a census of the program (disjunctive rules,
  constraints, recursion through the IDB dependency graph);
* :func:`unfold_to_ucq` — for nonrecursive disjunction-free programs, the
  classical unfolding of the goal (and of every constraint) through the
  IDB definitions into a union of conjunctive queries over the EDB
  relations, which the tier-0 executor then evaluates directly against the
  instance indexes with the engine's join planner.

Unfolding can blow up exponentially in the rule nesting, so it is guarded
by caps on the number of disjuncts and the atoms per disjunct; when a cap
trips, the planner falls back to the fixpoint tier, which is always
available for disjunction-free programs.  The caps themselves are a *cost
model decision* (:func:`effective_unfold_caps`): the unfolding size is
estimated in closed form over the IDB call graph
(:func:`estimate_unfolding`) and the caps widen past the fixed historical
256 x 24 limits exactly when the estimated UCQ work stays within budget —
or within a constant factor of the fixpoint alternative's per-read cost —
so a program with many *small* disjuncts is no longer exiled to tier 1 by
an arbitrary constant.  Explicit :class:`~repro.planner.policy.UnfoldCaps`
numbers override the model entirely.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Sequence

from ..analysis.deps import cyclic_relations, dependency_graph
from ..core.cq import Atom, Variable
from ..core.schema import RelationSymbol
from ..datalog.ddlog import ADOM, DisjunctiveDatalogProgram, Rule

Element = Hashable

# Unfolding guards: beyond these, tier 1 (fixpoint) is the better plan
# anyway — the UCQ would be evaluated disjunct by disjunct.
MAX_UNFOLDED_DISJUNCTS = 256
MAX_DISJUNCT_ATOMS = 24


@dataclass(frozen=True)
class ProgramShape:
    """Syntactic census of a program: the input to tier selection."""

    rule_count: int
    constraint_count: int
    disjunctive_rule_count: int
    recursive_relations: tuple[str, ...]
    defines_adom: bool

    @property
    def recursive(self) -> bool:
        return bool(self.recursive_relations)

    @property
    def disjunction_free(self) -> bool:
        return self.disjunctive_rule_count == 0


def analyse_program(program: DisjunctiveDatalogProgram) -> ProgramShape:
    """Census the program and detect recursion through its IDB dependencies."""
    constraint_count = sum(1 for rule in program.rules if rule.is_constraint())
    disjunctive_rule_count = sum(1 for rule in program.rules if len(rule.head) > 1)
    defines_adom = any(
        atom.relation.name == ADOM for rule in program.rules for atom in rule.head
    )
    graph = dependency_graph(program)
    return ProgramShape(
        rule_count=len(program.rules),
        constraint_count=constraint_count,
        disjunctive_rule_count=disjunctive_rule_count,
        recursive_relations=tuple(sorted(cyclic_relations(graph))),
        defines_adom=defines_adom,
    )


# ---------------------------------------------------------------------------
# UCQ unfolding of nonrecursive disjunction-free programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UnfoldedDisjunct:
    """One CQ disjunct of an unfolded goal or constraint.

    ``atoms`` are EDB atoms evaluated by the join planner; ``adom_terms``
    are terms that must additionally lie in the active domain (they came
    from ``adom`` atoms, or from rule variables bound by no EDB atom).  A
    constraint disjunct has an empty ``answer_terms``.
    """

    answer_terms: tuple
    atoms: tuple[Atom, ...]
    adom_terms: tuple

    def variables(self) -> frozenset[Variable]:
        result = {v for atom in self.atoms for v in atom.variables}
        result.update(t for t in self.adom_terms if isinstance(t, Variable))
        result.update(t for t in self.answer_terms if isinstance(t, Variable))
        return frozenset(result)


@dataclass(frozen=True)
class UcqUnfolding:
    """The goal and constraints of a program, unfolded into UCQs."""

    goal_disjuncts: tuple[UnfoldedDisjunct, ...]
    constraint_disjuncts: tuple[UnfoldedDisjunct, ...]

    @property
    def disjunct_count(self) -> int:
        return len(self.goal_disjuncts) + len(self.constraint_disjuncts)


def _resolve(term, sigma: dict):
    while isinstance(term, Variable) and term in sigma:
        term = sigma[term]
    return term


def _unify(
    head_args: Sequence, call_args: Sequence, sigma: dict
) -> dict | None:
    """Extend ``sigma`` so the (renamed-apart) head matches the call atom.

    Head variables are fresh, so unification only ever walks bindings one
    way; repeated head variables and constants on either side induce
    equalities on the caller's terms (or failure on a constant clash).
    """
    sigma = dict(sigma)
    for head_term, call_term in zip(head_args, call_args):
        head_term = _resolve(head_term, sigma)
        call_term = _resolve(call_term, sigma)
        if head_term == call_term and isinstance(head_term, Variable) == isinstance(
            call_term, Variable
        ):
            continue
        if isinstance(head_term, Variable):
            sigma[head_term] = call_term
        elif isinstance(call_term, Variable):
            sigma[call_term] = head_term
        elif head_term != call_term:
            return None
    return sigma


def _substitute_atom(atom: Atom, sigma: dict) -> Atom:
    return Atom(
        atom.relation, tuple(_resolve(term, sigma) for term in atom.arguments)
    )


@dataclass(frozen=True)
class _Branch:
    """One partially-unfolded disjunct: resolved parts plus pending atoms."""

    answer_terms: tuple
    pending: tuple[Atom, ...]
    atoms: tuple[Atom, ...]
    adom_terms: tuple

    def substituted(self, sigma: dict, extra_pending: tuple[Atom, ...]) -> "_Branch":
        return _Branch(
            tuple(_resolve(t, sigma) for t in self.answer_terms),
            tuple(_substitute_atom(a, sigma) for a in self.pending[1:])
            + tuple(_substitute_atom(a, sigma) for a in extra_pending),
            tuple(_substitute_atom(a, sigma) for a in self.atoms),
            tuple(_resolve(t, sigma) for t in self.adom_terms),
        )


def unfold_to_ucq(
    program: DisjunctiveDatalogProgram,
    max_disjuncts: int = MAX_UNFOLDED_DISJUNCTS,
    max_atoms: int = MAX_DISJUNCT_ATOMS,
) -> UcqUnfolding | None:
    """Unfold a nonrecursive disjunction-free program into UCQs.

    Every IDB body atom is replaced, one definition at a time, by the body
    of a defining rule (renamed apart and unified with the call); an IDB
    atom with no defining rule kills its branch — it is empty in the
    minimal model, and certain answers of a disjunction-free program are
    exactly its minimal-model answers.  Returns ``None`` when a cap trips.
    """
    definitions: dict[RelationSymbol, list[Rule]] = {}
    idb_names: set[str] = set()
    for rule in program.rules:
        if rule.head:
            definitions.setdefault(rule.head[0].relation, []).append(rule)
            idb_names.add(rule.head[0].relation.name)
    idb_names.add(program.goal_relation.name)
    counter = itertools.count()

    # Termination is guaranteed by nonrecursion; the step budget is a
    # belt-and-braces guard so a misuse on a recursive program (where a
    # pure-IDB cycle grows no disjunct and trips no cap) degrades to the
    # fixpoint tier instead of spinning.
    step_budget = max_disjuncts * (max_atoms + 8) * max(len(program.rules), 1)

    def expand(seed: _Branch) -> list[UnfoldedDisjunct] | None:
        nonlocal step_budget
        finished: list[UnfoldedDisjunct] = []
        stack = [seed]
        while stack:
            step_budget -= 1
            if step_budget <= 0 or len(stack) + len(finished) > max_disjuncts:
                return None
            branch = stack.pop()
            if not branch.pending:
                finished.append(
                    UnfoldedDisjunct(
                        branch.answer_terms,
                        branch.atoms,
                        tuple(dict.fromkeys(branch.adom_terms)),
                    )
                )
                continue
            atom = branch.pending[0]
            name = atom.relation.name
            if name == ADOM:
                stack.append(
                    _Branch(
                        branch.answer_terms,
                        branch.pending[1:],
                        branch.atoms,
                        branch.adom_terms + (atom.arguments[0],),
                    )
                )
            elif name in idb_names:
                for rule in definitions.get(atom.relation, ()):
                    renaming = {
                        v: Variable(f"{v.name}~u{next(counter)}")
                        for v in rule.variables
                    }
                    head = rule.head[0].substitute(renaming)
                    sigma = _unify(head.arguments, atom.arguments, {})
                    if sigma is None:
                        continue
                    body = tuple(a.substitute(renaming) for a in rule.body)
                    stack.append(branch.substituted(sigma, body))
            else:
                if len(branch.atoms) + 1 > max_atoms:
                    return None
                stack.append(
                    _Branch(
                        branch.answer_terms,
                        branch.pending[1:],
                        branch.atoms + (atom,),
                        branch.adom_terms,
                    )
                )
        return finished

    goal_disjuncts: list[UnfoldedDisjunct] = []
    constraint_disjuncts: list[UnfoldedDisjunct] = []
    for rule in program.rules:
        if rule.is_constraint():
            expanded = expand(_Branch((), tuple(rule.body), (), ()))
            if expanded is None:
                return None
            constraint_disjuncts.extend(expanded)
        elif rule.head[0].relation == program.goal_relation:
            expanded = expand(
                _Branch(tuple(rule.head[0].arguments), tuple(rule.body), (), ())
            )
            if expanded is None:
                return None
            goal_disjuncts.extend(expanded)
        if len(goal_disjuncts) + len(constraint_disjuncts) > max_disjuncts:
            return None
    return UcqUnfolding(tuple(goal_disjuncts), tuple(constraint_disjuncts))


# ---------------------------------------------------------------------------
# Cost-based unfolding caps
# ---------------------------------------------------------------------------

#: The historical fixed caps' work product — the cost model's budget floor.
DEFAULT_UNFOLD_WORK_BUDGET = float(MAX_UNFOLDED_DISJUNCTS * MAX_DISJUNCT_ATOMS)
#: Admit an unfolding whose estimated work stays within this factor of the
#: fixpoint alternative's per-read score: tier 0 is stateless under
#: streaming updates, so a moderately wider UCQ still beats maintaining a
#: materialization.
UNFOLD_FIXPOINT_ADVANTAGE = 8.0
#: Hard ceilings the cost model never widens past (blowup backstops).
UNFOLD_DISJUNCT_CEILING = 4096
UNFOLD_ATOM_CEILING = 96
_ESTIMATE_CLAMP = 1e12


def estimate_unfolding(
    program: DisjunctiveDatalogProgram,
) -> tuple[int, int] | None:
    """Closed-form size estimate of the UCQ unfolding, without unfolding.

    Returns ``(disjuncts, max_atoms_per_disjunct)`` computed by a memoized
    pass over the nonrecursive IDB call graph: a relation's disjunct count
    is the sum over its defining rules of the product of its IDB body
    atoms' counts, and its atom count is the body's EDB atoms plus its IDB
    atoms' contributions.  Unification only ever *kills* branches, so both
    figures are upper bounds on the real unfolding.  Returns ``None`` for
    programs the unfolder cannot handle anyway (recursive, disjunctive, or
    ``adom``-defining).
    """
    shape = analyse_program(program)
    if shape.defines_adom or not shape.disjunction_free or shape.recursive:
        return None
    definitions: dict[RelationSymbol, list[Rule]] = {}
    for rule in program.rules:
        if rule.head:
            definitions.setdefault(rule.head[0].relation, []).append(rule)
    memo: dict[RelationSymbol, tuple[float, float]] = {}

    def body_estimate(rule: Rule) -> tuple[float, float]:
        disjuncts, atoms = 1.0, 0.0
        for atom in rule.body:
            if atom.relation.name == ADOM:
                continue
            if atom.relation in definitions:
                sub_d, sub_a = relation_estimate(atom.relation)
                disjuncts = min(disjuncts * sub_d, _ESTIMATE_CLAMP)
                atoms += sub_a
            else:
                atoms += 1
        return disjuncts, atoms

    def relation_estimate(relation: RelationSymbol) -> tuple[float, float]:
        cached = memo.get(relation)
        if cached is not None:
            return cached
        disjuncts, atoms = 0.0, 0.0
        for rule in definitions.get(relation, ()):
            rule_d, rule_a = body_estimate(rule)
            disjuncts = min(disjuncts + rule_d, _ESTIMATE_CLAMP)
            atoms = max(atoms, rule_a)
        memo[relation] = (disjuncts, atoms)
        return memo[relation]

    total_disjuncts, max_atoms = 0.0, 0.0
    for rule in program.rules:
        if rule.is_constraint() or rule.head[0].relation == program.goal_relation:
            rule_d, rule_a = body_estimate(rule)
            total_disjuncts = min(total_disjuncts + rule_d, _ESTIMATE_CLAMP)
            max_atoms = max(max_atoms, rule_a)
    return int(total_disjuncts), int(max_atoms)


def fixpoint_read_score(program: DisjunctiveDatalogProgram) -> float:
    """A rough per-read cost of the tier-1 alternative: total body atoms
    joined per semi-naive round times the IDB relation count bounding the
    number of rounds.  Unitless, comparable to the unfolding's
    disjuncts x atoms work product."""
    idb = {rule.head[0].relation for rule in program.rules if rule.head}
    body_atoms = sum(len(rule.body) for rule in program.rules if rule.head)
    return float(max(body_atoms, 1) * max(len(idb), 1))


def effective_unfold_caps(
    program: DisjunctiveDatalogProgram,
    caps=None,
) -> tuple[int, int]:
    """The (max_disjuncts, max_atoms) the planner hands the unfolder.

    ``caps`` is an optional :class:`~repro.planner.policy.UnfoldCaps`;
    explicit numbers win outright.  Otherwise the decision is the cost
    model's: estimate the unfolding in closed form and widen the caps past
    the historical 256 x 24 fixed limits exactly when the estimated work
    (disjuncts x atoms) stays within the work budget or within
    ``UNFOLD_FIXPOINT_ADVANTAGE`` x the fixpoint alternative's read score —
    capped by hard ceilings so a genuine blowup still trips early and
    degrades to tier 1.
    """
    if caps is not None and caps.max_disjuncts is not None and caps.max_atoms is not None:
        return caps.max_disjuncts, caps.max_atoms
    budget = DEFAULT_UNFOLD_WORK_BUDGET
    if caps is not None and caps.work_budget is not None:
        budget = caps.work_budget
    disjuncts, atoms = MAX_UNFOLDED_DISJUNCTS, MAX_DISJUNCT_ATOMS
    estimate = estimate_unfolding(program)
    if estimate is not None:
        est_disjuncts, est_atoms = estimate
        work = float(max(est_disjuncts, 1)) * float(max(est_atoms, 1))
        allowance = max(budget, UNFOLD_FIXPOINT_ADVANTAGE * fixpoint_read_score(program))
        if work <= allowance:
            disjuncts = max(disjuncts, min(est_disjuncts, UNFOLD_DISJUNCT_CEILING))
            atoms = max(atoms, min(est_atoms, UNFOLD_ATOM_CEILING))
    if caps is not None:
        if caps.max_disjuncts is not None:
            disjuncts = caps.max_disjuncts
        if caps.max_atoms is not None:
            atoms = caps.max_atoms
    return disjuncts, atoms
