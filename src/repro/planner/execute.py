"""Executors for the planner's three tiers.

Every executor computes exactly the certain answers the ground+CDCL engine
(:mod:`repro.engine.grounder`) would — including the vacuous-certainty
convention for inconsistent programs (every tuple over the active domain)
and the restriction of answers to the active domain — so routing never
changes answers, only cost:

* tier 0 evaluates the UCQ unfolding disjunct-by-disjunct with the
  engine's join planner directly over the instance indexes;
* tier 1 runs the semi-naive least fixpoint of
  :mod:`repro.datalog.plain` and checks constraints against the
  materialized minimal model (rule bodies are positive, hence monotone: a
  constraint body satisfied in the minimal model is satisfied in every
  model, so firing means *no* model exists);
* tier 2 grounds once and decides candidates against the persistent
  incremental CDCL solver, optionally across a worker pool.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..core.cq import Variable
from ..core.instance import Instance
from ..datalog.plain import DatalogProgram
from ..engine.grounder import ground_program
from ..engine.joins import compile_join, execute_join, join_exists
from ..engine.parallel import parallel_certain_answers, resolve_workers
from .analysis import UcqUnfolding, UnfoldedDisjunct
from .plan import (
    TIER_FIXPOINT,
    TIER_REWRITE,
    QueryPlan,
    auto_workers,
    estimate_cost,
    plan_program,
)


def vacuous_answers(instance: Instance, arity: int) -> frozenset[tuple]:
    """Every tuple over the active domain (the no-model convention)."""
    domain = sorted(instance.active_domain, key=repr)
    return frozenset(itertools.product(domain, repeat=arity))


def vacuous_decisions(
    instance: Instance, candidates: "Sequence[tuple]"
) -> dict[tuple, bool]:
    """Per-candidate verdicts when no model exists: certain iff over adom."""
    adom = instance.active_domain
    return {
        candidate: all(value in adom for value in candidate)
        for candidate in candidates
    }


# ---------------------------------------------------------------------------
# Tier 0: UCQ evaluation through the join planner
# ---------------------------------------------------------------------------


def _disjunct_guards_hold(disjunct: UnfoldedDisjunct, adom: frozenset) -> bool:
    """Constant guards: constants under adom atoms / answer positions."""
    for term in disjunct.adom_terms:
        if not isinstance(term, Variable) and term not in adom:
            return False
    return all(
        isinstance(term, Variable) or term in adom
        for term in disjunct.answer_terms
    )


def _free_adom_variables(
    disjunct: UnfoldedDisjunct, bound: set[Variable]
) -> set[Variable]:
    """Variables constrained only by adom membership, given ``bound``."""
    atom_vars = {v for atom in disjunct.atoms for v in atom.variables}
    return {
        term
        for term in disjunct.adom_terms + disjunct.answer_terms
        if isinstance(term, Variable)
        and term not in atom_vars
        and term not in bound
    }


# Tier-0 join plans, cached on the disjunct object itself (frozen
# dataclass, hence ``object.__setattr__`` — the repo's attribute-cache
# idiom): plans are interner-independent, so one compiled plan per
# (disjunct, bound-variable set) serves every instance the unfolding is
# ever evaluated on, and the cache dies with the unfolding.
_DISJUNCT_PLANS_ATTR = "_columnar_plans"


def _disjunct_plan(disjunct: UnfoldedDisjunct, instance: Instance, bound=()):
    plans = getattr(disjunct, _DISJUNCT_PLANS_ATTR, None)
    if plans is None:
        plans = {}
        object.__setattr__(disjunct, _DISJUNCT_PLANS_ATTR, plans)
    key = frozenset(v.name for v in bound)
    plan = plans.get(key)
    if plan is None:
        plan = compile_join(disjunct.atoms, instance, bound=bound)
        plans[key] = plan
    return plan


def _disjunct_answers(
    disjunct: UnfoldedDisjunct, instance: Instance, domain: Sequence
) -> Iterator[tuple]:
    adom = instance.active_domain
    if not _disjunct_guards_hold(disjunct, adom):
        return
    free_all = _free_adom_variables(disjunct, set())
    if free_all and not domain:
        return
    answer_vars = {t for t in disjunct.answer_terms if isinstance(t, Variable)}
    # Existential adom-only variables only need a nonempty domain (checked
    # above); enumerating them would yield each answer |domain| extra times.
    free = sorted(free_all & answer_vars, key=str)
    plan = _disjunct_plan(disjunct, instance)
    for assignment in plan.assignments(
        execute_join(plan, instance), instance.interner
    ):
        if free:
            for values in itertools.product(domain, repeat=len(free)):
                full = dict(assignment)
                full.update(zip(free, values))
                yield tuple(
                    full[t] if isinstance(t, Variable) else t
                    for t in disjunct.answer_terms
                )
        else:
            yield tuple(
                assignment[t] if isinstance(t, Variable) else t
                for t in disjunct.answer_terms
            )


def _disjunct_satisfiable(
    disjunct: UnfoldedDisjunct,
    instance: Instance,
    initial: dict | None = None,
) -> bool:
    """Is the (Boolean, possibly partially bound) disjunct satisfiable?"""
    adom = instance.active_domain
    if not _disjunct_guards_hold(disjunct, adom):
        return False
    if _free_adom_variables(disjunct, set(initial or ())) and not adom:
        return False
    if not initial:
        return join_exists(_disjunct_plan(disjunct, instance), instance)
    bound = tuple(sorted(initial, key=lambda v: v.name))
    plan = _disjunct_plan(disjunct, instance, bound)
    seed = plan.intern_seed(initial, instance.interner)
    return join_exists(plan, instance, seed)


def unfolding_consistent(unfolding: UcqUnfolding, instance: Instance) -> bool:
    """Does some model exist — i.e. no unfolded constraint fires?"""
    return not any(
        _disjunct_satisfiable(disjunct, instance)
        for disjunct in unfolding.constraint_disjuncts
    )


def ucq_certain_answers(plan: QueryPlan, instance: Instance) -> frozenset[tuple]:
    """Tier-0 certain answers: evaluate the unfolded UCQ, no grounding."""
    unfolding = plan.unfolding
    assert unfolding is not None
    if not unfolding_consistent(unfolding, instance):
        return vacuous_answers(instance, plan.program.arity)
    domain = sorted(instance.active_domain, key=repr)
    answers: set[tuple] = set()
    for disjunct in unfolding.goal_disjuncts:
        answers.update(_disjunct_answers(disjunct, instance, domain))
    return frozenset(answers)


def ucq_candidate_certain(
    unfolding: UcqUnfolding, instance: Instance, candidate: tuple
) -> bool:
    """Decide one candidate tuple against the unfolded goal.

    Assumes consistency was checked; binds the answer terms and asks the
    join planner for a single witness per disjunct.
    """
    adom = instance.active_domain
    if any(value not in adom for value in candidate):
        return False
    for disjunct in unfolding.goal_disjuncts:
        if len(disjunct.answer_terms) != len(candidate):
            continue
        initial: dict = {}
        feasible = True
        for term, value in zip(disjunct.answer_terms, candidate):
            if isinstance(term, Variable):
                if initial.setdefault(term, value) != value:
                    feasible = False
                    break
            elif term != value:
                feasible = False
                break
        if feasible and _disjunct_satisfiable(disjunct, instance, initial):
            return True
    return False


# ---------------------------------------------------------------------------
# Tier 1: semi-naive fixpoint plus constraint checking
# ---------------------------------------------------------------------------


# Cached on the (frozen) plan object via the repo's attribute-cache idiom:
# the fixpoint tier's compiled datalog program carries per-rule join plans
# (``DatalogProgram.compiled_rules``) that must stay warm across adaptive
# tier-state swaps — rebuilding the program would discard them.
_FIXPOINT_PROGRAM_ATTR = "_planner_fixpoint_program"


def fixpoint_program(plan: QueryPlan) -> DatalogProgram:
    """The disjunction-free rules the fixpoint tier runs, as plain datalog.

    For plans carrying a semantic rewriting this is the constructed
    canonical datalog program; otherwise the plan's own rules minus
    constraints (which :func:`fixpoint_certain_answers` checks against the
    materialized minimal model instead).  The result is cached on the plan
    so repeated state (re)builds — adaptive swaps, session compaction —
    reuse one program object and its compiled-rule caches.
    """
    cached = getattr(plan, _FIXPOINT_PROGRAM_ATTR, None)
    if cached is not None:
        return cached
    program = plan.execution_program
    if isinstance(program, DatalogProgram) and not any(
        rule.is_constraint() for rule in program.rules
    ):
        result = program
    else:
        result = DatalogProgram(
            [rule for rule in program.rules if rule.head],
            goal_relation=program.goal_relation,
        )
    object.__setattr__(plan, _FIXPOINT_PROGRAM_ATTR, result)
    return result


def constraint_fires(rule, fixpoint: Instance) -> bool:
    """Does a constraint body match the materialized fixpoint?

    ``fixpoint`` holds the derived IDB facts *and* the ``adom`` facts the
    fixpoint evaluator seeds, so constraint bodies (EDB, IDB and adom
    atoms alike) are plain joins against it — run depth-first with early
    exit (:func:`~repro.engine.joins.join_exists`) over the interned rows.
    """
    return join_exists(compile_join(rule.body, fixpoint), fixpoint)


def fixpoint_certain_answers(plan: QueryPlan, instance: Instance) -> frozenset[tuple]:
    """Tier-1 certain answers: least fixpoint + constraint check, no SAT."""
    program = plan.execution_program
    datalog = fixpoint_program(plan)
    fixpoint = datalog.least_fixpoint(instance)
    constraints = [rule for rule in program.rules if not rule.head]
    if any(constraint_fires(rule, fixpoint) for rule in constraints):
        return vacuous_answers(instance, program.arity)
    adom = instance.active_domain
    return frozenset(
        row
        for row in fixpoint.tuples(program.goal_relation)
        if all(value in adom for value in row)
    )


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def execute_plan(
    plan: QueryPlan,
    instance: Instance,
    parallel: "int | str | None" = None,
    chunk_size: int | None = None,
) -> frozenset[tuple]:
    """Certain answers via the plan's tier.

    ``parallel`` only affects tier 2 (the SAT-free tiers have no candidate
    decisions to fan out); ``"auto"`` sizes the pool from the cost
    estimate's work score.
    """
    if plan.tier == TIER_REWRITE:
        return ucq_certain_answers(plan, instance)
    if plan.tier == TIER_FIXPOINT:
        return fixpoint_certain_answers(plan, instance)
    ground = ground_program(plan.program, instance)
    if parallel == "auto":
        parallel = auto_workers(estimate_cost(plan, instance).tier2_work_score)
    if parallel is not None and resolve_workers(parallel) > 1:
        return parallel_certain_answers(
            ground, workers=parallel, chunk_size=chunk_size
        )
    return ground.certain_answers()


class PlannedMddlogEngine:
    """A complete certain-answer engine over a compiled MDDlog program.

    Wraps a Theorem 3.3 compilation (or any DDlog program) behind the
    planner: certain answers are computed by the cheapest sound tier.
    Unlike the bounded counter-model engine this is complete — the
    compiled program *is* the query (Theorem 3.3), and every tier computes
    its certain answers exactly.
    """

    def __init__(self, program, semantic=None, budget=None, policy=None) -> None:
        from .policy import PlanPolicy

        if policy is None:
            policy = PlanPolicy(semantic=semantic, semantic_budget=budget)
        self.program = program
        self.plan = plan_program(program, policy)

    def certain_answers(
        self, instance: Instance, parallel: "int | str | None" = None
    ) -> frozenset[tuple]:
        return execute_plan(self.plan, instance, parallel=parallel)

    def is_certain(self, instance: Instance, answer: Sequence = ()) -> bool:
        answer = tuple(answer)
        if self.plan.tier == TIER_REWRITE:
            unfolding = self.plan.unfolding
            assert unfolding is not None
            if not unfolding_consistent(unfolding, instance):
                adom = instance.active_domain
                return all(value in adom for value in answer)
            return ucq_candidate_certain(unfolding, instance, answer)
        if self.plan.tier == TIER_FIXPOINT:
            return answer in fixpoint_certain_answers(self.plan, instance)
        return ground_program(self.program, instance).holds(answer)
