"""Semantic rewritability routing: construct the rewriting, not just detect it.

The syntactic tiers of :mod:`repro.planner.plan` are sound but blunt: every
Theorem 3.3 type-elimination compilation contains a disjunctive guess rule,
so every compiled OMQ lands on the ground+CDCL tier even when the paper
proves it FO- or datalog-rewritable.  This module is the planner's semantic
stage for exactly that gap.  When the syntactic plan says tier 2 and the
program is an MDDlog compilation, it runs the Section 5.3 decision
procedures *constructively*:

1. **Templates** (Theorem 4.6).  The program is connected to (generalized,
   marked) CSP templates — either through the source OMQ recorded by
   :func:`repro.omq.certain.compile_to_mddlog` (atomic / Boolean atomic
   queries), or, for bare programs, through the MMSNP/MDDlog bridge
   (:func:`repro.translations.mmsnp_mddlog.mddlog_to_mmsnp` certifies the
   simple connected MMSNP fragment of Proposition 4.1/4.4, then
   :func:`repro.translations.alc_aq_mddlog.mddlog_to_alc_aq` +
   :func:`repro.translations.csp_templates.omq_to_csp` produce templates).
2. **FO-rewritability** (Theorem 5.10 first half, lifted by Proposition
   5.11/Theorem 5.15): the Larose–Loten–Tardif dismantling test of
   :mod:`repro.csp.duality` on every pruned template expansion.  On
   success, the bounded critical obstruction sets are *materialized* into a
   UCQ (Section 5.3's construction; Feier–Kuusisto–Lutz prove the general
   MDDlog decision problem decidable) that the existing tier-0 executor
   runs unchanged — marked elements become the answer variable.
3. **Datalog-rewritability** (Theorem 5.10 second half, via the
   Barto–Kozik bounded-width certificate of :mod:`repro.csp.polymorphisms`):
   on success the canonical arc-consistency datalog program of
   :mod:`repro.csp.canonical_datalog` (Feder–Vardi) is materialized — for
   marked templates as a *parameterized* variant whose extra argument
   carries the candidate answer — and executed by the tier-1 fixpoint.

Every constructed artifact passes a **soundness cross-validation hook**
before it is allowed to route: the rewriting's certain answers are compared
against the forced tier-2 (ground+CDCL) answers of the original program on
an exhaustively enumerated family of small instances over the program's EDB
schema (:func:`cross_validate`).  Obstruction sets are computed within size
bounds and arc consistency is complete only for width-1 templates, so the
hook is what turns "plausible rewriting" into "rewriting we will serve";
a failed validation degrades to tier 2 with a rationale saying so.

Everything is governed by a :class:`SemanticBudget` — wall-clock deadline
plus size gates on the type space, the templates, the obstruction search
and the validation family — so undecidable-in-practice blowups (the full
Table 1 ontology's 90-element templates, say) degrade gracefully to
tier 2 instead of hanging the planner.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol
from ..core.structures import expansion_with_constants
from ..datalog.ddlog import ADOM, GOAL, DisjunctiveDatalogProgram, Rule
from ..obs import telemetry as _telemetry
from .analysis import UcqUnfolding, UnfoldedDisjunct

__all__ = [
    "SemanticBudget",
    "SemanticReport",
    "analyse_rewritability",
    "cross_validate",
]


class BudgetExceeded(Exception):
    """Internal control flow: a semantic budget gate tripped."""


class DeadlineExceeded(BudgetExceeded):
    """The soft wall-clock deadline tripped — a *transient* verdict (it
    reflects machine load, not the program), so the planner does not cache
    it."""


class _Inapplicable(Exception):
    """Internal control flow: the semantic procedures do not apply."""


@dataclass(frozen=True)
class SemanticBudget:
    """Resource knobs for the semantic stage (all trip to tier 2, never fail).

    ``time_budget_s`` is a soft wall-clock deadline checked between stages
    and between templates; the size gates below bound the stages whose cost
    explodes before a clock check could fire.
    """

    #: soft wall-clock deadline for the whole analysis
    time_budget_s: float = 10.0
    #: allow the program-level MMSNP/MDDlog bridge for programs without a
    #: compile-time source-OMQ hint (the bridge builds a type system over
    #: the program's own IDB predicates, so it is gated hard below)
    bridge: bool = True
    #: bridge gate: max unary IDB predicates of an unhinted program
    max_bridge_predicates: int = 4
    #: type-space gate: max decision concepts before ``all_types`` blows up
    max_type_decisions: int = 12
    #: max marked/unmarked templates produced by the Theorem 4.6 encoding
    max_templates: int = 12
    #: max active-domain elements of any template (dismantling is quadratic
    #: in the square of this; pruning is a homomorphism search over it)
    max_template_elements: int = 12
    #: bounded-width certificate gate (the 4-ary WNU search is O(n^4) table
    #: points with O(tuples^4) constraints)
    max_width_elements: int = 6
    #: canonical-program gate: subsets of the template domain become IDB
    #: predicates, so rules grow as 2^elements
    max_canonical_elements: int = 5
    #: escalating (max elements, max facts) bounds for the critical
    #: obstruction search
    obstruction_bounds: tuple[tuple[int, int], ...] = ((2, 2), (3, 3))
    #: cap on the distributed obstruction-product UCQ
    max_ucq_disjuncts: int = 64
    #: cross-validation family: stratified instances over the EDB schema —
    #: exhaustive-first per fact count up to (validation_elements,
    #: validation_facts) (three elements so the family contains triangles —
    #: the smallest witnesses separating width 1 from width 2), plus an
    #: escalation stratum one element / one fact larger, sized to probe
    #: *past* the largest obstruction bound; ``max_validation_instances``
    #: caps the whole family, with oversized strata sampled by a
    #: deterministic stride instead of truncated lexicographically
    validation_elements: int = 3
    validation_facts: int = 3
    max_validation_instances: int = 400


DEFAULT_BUDGET = SemanticBudget()


@dataclass(frozen=True)
class SemanticReport:
    """What the semantic stage decided, and why — cached on the QueryPlan.

    ``route`` records how templates were obtained (``source-omq`` for
    compile-time hints, ``mmsnp-bridge`` for the program-level bridge);
    ``rewriting`` names the constructed artifact (``obstruction-ucq`` or
    ``canonical-datalog``) when one routed.
    """

    applicable: bool
    rationale: str
    route: str | None = None
    fo_rewritable: bool | None = None
    datalog_rewritable: bool | None = None
    rewriting: str | None = None
    templates: int = 0
    template_elements: tuple[int, ...] = ()
    obstructions: int = 0
    validated_instances: int = 0
    elapsed_s: float = 0.0
    #: the verdict came from a tripped wall-clock deadline and must not be
    #: cached (machine load, not program structure)
    transient: bool = False

    def describe(self) -> dict:
        info = {
            "applicable": self.applicable,
            "rationale": self.rationale,
        }
        if self.route is not None:
            info["route"] = self.route
        if self.fo_rewritable is not None:
            info["fo_rewritable"] = self.fo_rewritable
        if self.datalog_rewritable is not None:
            info["datalog_rewritable"] = self.datalog_rewritable
        if self.rewriting is not None:
            info["rewriting"] = self.rewriting
        if self.templates:
            info["templates"] = self.templates
        if self.obstructions:
            info["obstructions"] = self.obstructions
        if self.validated_instances:
            info["validated_instances"] = self.validated_instances
        if self.transient:
            info["transient"] = True
        info["elapsed_s"] = round(self.elapsed_s, 3)
        return info


@dataclass
class _Deadline:
    """Soft wall-clock deadline checked between stages.

    With telemetry enabled, every check also records the time elapsed since
    the previous check into the ``planner.semantic.phase.<stage>``
    histogram — per-phase timing measured at exactly the points the budget
    is enforced, with no extra bookkeeping on the disabled path.
    """

    seconds: float
    started: float = field(default_factory=_telemetry.now)
    last_check: float | None = None

    def check(self, stage: str) -> None:
        now = _telemetry.now()
        tel = _telemetry.ACTIVE
        if tel is not None:
            previous = self.last_check if self.last_check is not None else self.started
            tel.record(f"planner.semantic.phase.{stage}", now - previous)
            self.last_check = now
        if now - self.started > self.seconds:
            raise DeadlineExceeded(
                f"wall-clock budget of {self.seconds:g}s exhausted during {stage}"
            )

    @property
    def elapsed(self) -> float:
        return _telemetry.now() - self.started


@dataclass(frozen=True)
class _TemplateFamily:
    """The Theorem 4.6 encoding normalized for the constructions below.

    ``expansions`` carries ``(expanded instance, mark symbols)`` pairs — for
    the Boolean case the mark tuple is empty and the expansion is the
    template itself, so both arities flow through one code path.
    ``unmarked`` carries the template instances *without* marks: a model of
    the compiled program over ``D`` is a homomorphism of ``D`` into some
    unmarked template, so these drive the constructed *consistency* test
    (``is_consistent`` and the sharded vacuous-escalation protocol).
    """

    arity: int
    route: str
    expansions: tuple[tuple[Instance, tuple[RelationSymbol, ...]], ...]
    unmarked: tuple[Instance, ...]


# ---------------------------------------------------------------------------
# Stage 1: templates — source-OMQ route and the MMSNP/MDDlog bridge
# ---------------------------------------------------------------------------


def _templates_for(
    program: DisjunctiveDatalogProgram,
    budget: SemanticBudget,
    deadline: _Deadline,
) -> _TemplateFamily:
    """Theorem 4.6 templates for the program, via the cheapest available route."""
    omq = getattr(program, "source_omq", None)
    route = "source-omq"
    if omq is None:
        omq = _bridge_omq(program, budget)
        route = "mmsnp-bridge"
    if not (omq.is_atomic() or omq.is_boolean_atomic()):
        raise _Inapplicable(
            "the semantic procedures run through Theorem 4.6, which covers "
            "atomic / Boolean atomic queries; the source query is a CQ/UCQ"
        )
    _gate_type_space(omq, budget)
    deadline.check("type-system construction")
    from ..dl.reasoner import UnsupportedOntologyError
    from ..translations.csp_templates import omq_to_csp

    try:
        encoding = omq_to_csp(omq)
    except (UnsupportedOntologyError, ValueError) as error:
        raise _Inapplicable(f"Theorem 4.6 encoding unavailable: {error}") from error
    deadline.check("Theorem 4.6 template construction")
    if encoding.boolean:
        raw: list[tuple[Instance, tuple[RelationSymbol, ...]]] = [
            (template, ()) for template in encoding.templates
        ]
        unmarked: list[Instance] = list(encoding.templates)
        arity = 0
    else:
        raw = [
            expansion_with_constants(marked.instance, marked.marks)
            for marked in encoding.marked_templates
        ]
        # Several marked templates share one instance; for consistency only
        # the distinct instances matter.
        unmarked = list(dict.fromkeys(m.instance for m in encoding.marked_templates))
        arity = encoding.marked_templates[0].arity if encoding.marked_templates else 1
    if not raw:
        raise _Inapplicable("the Theorem 4.6 encoding produced no templates")
    if any(not expansion.active_domain for expansion, _marks in raw):
        # A template with no facts over the data schema cannot speak about
        # the program's adom semantics (elements reaching the active domain
        # through relations outside the EDB schema still feed the guess
        # rule); refuse rather than serve a vacuously-true rewriting.
        raise _Inapplicable(
            "the Theorem 4.6 encoding produced a degenerate empty-domain "
            "template (empty effective data schema)"
        )
    if len(raw) > budget.max_templates:
        raise BudgetExceeded(
            f"{len(raw)} templates exceed the {budget.max_templates}-template budget"
        )
    for expansion, _marks in raw:
        size = len(expansion.active_domain)
        if size > budget.max_template_elements:
            raise BudgetExceeded(
                f"a template with {size} elements exceeds the "
                f"{budget.max_template_elements}-element budget"
            )
    deadline.check("unmarked-template pruning")
    from ..csp.template import prune_to_incomparable

    return _TemplateFamily(
        arity=arity,
        route=route,
        expansions=tuple(raw),
        unmarked=tuple(prune_to_incomparable(unmarked)),
    )


def _bridge_omq(program: DisjunctiveDatalogProgram, budget: SemanticBudget):
    """The program-level bridge: MDDlog → MMSNP (fragment check) → (ALC, AQ).

    Proposition 4.1 puts MDDlog inside MMSNP-with-fact-variables; the plain
    MMSNP fragment (simple connected rules) is exactly what Theorem 4.4 and
    Theorem 3.4 (2) translate back into (ALC, AQ/BAQ), from where Theorem
    4.6 takes over.  The bridge builds a type system over the program's own
    IDB predicates, so it is gated on their number.
    """
    if not budget.bridge:
        raise _Inapplicable(
            "no compile-time source-OMQ hint and the program-level "
            "MMSNP bridge is disabled (SemanticBudget(bridge=True) enables it)"
        )
    unary_idbs = [
        symbol
        for symbol in program.idb_relations
        if symbol.arity == 1 and symbol.name not in (GOAL, ADOM)
    ]
    if len(unary_idbs) > budget.max_bridge_predicates:
        raise BudgetExceeded(
            f"{len(unary_idbs)} unary IDB predicates exceed the "
            f"{budget.max_bridge_predicates}-predicate bridge budget"
        )
    from ..translations.alc_aq_mddlog import mddlog_to_alc_aq
    from ..translations.mmsnp_mddlog import mddlog_to_mmsnp

    try:
        formula = mddlog_to_mmsnp(program)
    except ValueError as error:
        raise _Inapplicable(f"not an MDDlog program: {error}") from error
    if not formula.is_mmsnp():
        raise _Inapplicable(
            "the program's MMSNP form leaves the plain MMSNP fragment "
            "(Proposition 4.1 fact variables); no CSP connection applies"
        )
    try:
        return mddlog_to_alc_aq(program)
    except ValueError as error:
        raise _Inapplicable(f"outside the Theorem 3.4 fragment: {error}") from error


def _gate_type_space(omq, budget: SemanticBudget) -> None:
    """Bound the 2^decisions type enumeration before attempting it."""
    from ..dl.concepts import ConceptName
    from ..dl.reasoner import TypeSystem, UnsupportedOntologyError

    schema = omq.data_schema
    extra = [ConceptName(s.name) for s in schema.concept_names] if schema else []
    try:
        atom = next(iter(omq.ucq().disjuncts[0].atoms))
        extra.append(ConceptName(atom.relation.name))
        system = TypeSystem(omq.ontology, extra_concepts=extra)
    except (UnsupportedOntologyError, ValueError) as error:
        raise _Inapplicable(f"type elimination unavailable: {error}") from error
    decisions = len(system.concept_name_decisions) + len(
        system.existential_decisions
    )
    if decisions > budget.max_type_decisions:
        raise BudgetExceeded(
            f"the type space has {decisions} decision concepts, past the "
            f"{budget.max_type_decisions}-decision budget"
        )


# ---------------------------------------------------------------------------
# Stage 2: FO-rewritability and the obstruction-set UCQ
# ---------------------------------------------------------------------------


def _prune_expansions(
    family: _TemplateFamily, deadline: _Deadline
) -> list[tuple[Instance, tuple[RelationSymbol, ...]]]:
    """Keep homomorphically incomparable expansions (Lemma 5.13 / Thm 5.15).

    Marked templates are compared through their ``(B, b)^c`` expansions —
    a homomorphism of expansions is exactly a mark-respecting homomorphism
    — so pruning the expansions prunes the marked templates.
    """
    from ..core.homomorphism import has_homomorphism

    kept: list[tuple[Instance, tuple[RelationSymbol, ...]]] = []
    for candidate, marks in family.expansions:
        deadline.check("template pruning")
        if any(has_homomorphism(candidate, other) for other, _ in kept):
            continue
        kept = [
            (other, other_marks)
            for other, other_marks in kept
            if not has_homomorphism(other, candidate)
        ]
        kept.append((candidate, marks))
    return kept


def _obstruction_ucq_at(
    pruned: Sequence[tuple[Instance, tuple[RelationSymbol, ...]]],
    unmarked: Sequence[Instance],
    arity: int,
    bound: tuple[int, int],
    budget: SemanticBudget,
    deadline: _Deadline,
) -> tuple[UcqUnfolding, int] | None:
    """The distributed obstruction-set UCQ of the generalized coCSP, at one
    obstruction size bound.

    A tuple ``a`` is a certain answer iff ``(D, a)`` maps to *no* pruned
    template, i.e. iff **every** template has **some** critical obstruction
    mapping into ``(D, a)^c`` (Section 5.3).  Distributing the conjunction
    over the per-template obstruction disjunctions yields a UCQ: one
    disjunct per choice of one obstruction per template, with every
    ``Pi``-marked obstruction element identified with answer variable
    ``xi``.  Returns ``None`` when some template has no obstruction within
    the bound; the caller escalates through ``budget.obstruction_bounds``
    and cross-validates each constructed UCQ, because a bound that is too
    small yields an *incomplete* set (a UCQ missing answers), not a wrong
    obstruction.

    The *constraint* disjuncts encode the consistency test the same way
    over the ``unmarked`` templates: no model of the compiled program
    extends ``D`` iff ``D`` maps into none of them, i.e. iff every
    unmarked template has an obstruction mapping into ``D``.  An unmarked
    template with no obstruction within the bound contributes an empty
    product — "never inconsistent" — which is either genuinely the case or
    an incompleteness the consistency half of the cross-validation hook
    rejects.
    """
    from ..csp.duality import bounded_obstruction_set

    max_elements, max_facts = bound
    answer_vars = tuple(Variable(f"x{i}") for i in range(arity))
    per_template: list[list[tuple[Atom, ...]]] = []
    total_obstructions = 0
    counter = itertools.count()
    for expansion, marks in pruned:
        deadline.check("obstruction search")
        obstructions = bounded_obstruction_set(expansion, max_elements, max_facts)
        deadline.check("obstruction search")
        if not obstructions:
            return None
        disjuncts = []
        for obstruction in obstructions:
            atoms = _obstruction_atoms(obstruction, marks, answer_vars, counter)
            if atoms is not None:
                disjuncts.append(atoms)
        if not disjuncts:
            return None
        per_template.append(disjuncts)
        total_obstructions += len(disjuncts)
    product_size = 1
    for disjuncts in per_template:
        product_size *= len(disjuncts)
        if product_size > budget.max_ucq_disjuncts:
            raise BudgetExceeded(
                f"the distributed obstruction UCQ exceeds the "
                f"{budget.max_ucq_disjuncts}-disjunct budget"
            )
    goal_disjuncts = tuple(
        UnfoldedDisjunct(
            answer_vars,
            tuple(atom for component in combination for atom in component),
            (),
        )
        for combination in itertools.product(*per_template)
    )
    # Consistency constraints over the unmarked templates.
    per_unmarked: list[list[tuple[Atom, ...]]] = []
    constraint_size = 1
    for template in unmarked:
        deadline.check("consistency obstruction search")
        obstructions = bounded_obstruction_set(template, max_elements, max_facts)
        disjuncts = [
            atoms
            for obstruction in obstructions
            if (atoms := _obstruction_atoms(obstruction, (), (), counter))
            is not None
        ]
        if not disjuncts:
            per_unmarked = []
            break
        constraint_size *= len(disjuncts)
        if constraint_size > budget.max_ucq_disjuncts:
            raise BudgetExceeded(
                f"the distributed consistency UCQ exceeds the "
                f"{budget.max_ucq_disjuncts}-disjunct budget"
            )
        per_unmarked.append(disjuncts)
    constraint_disjuncts = tuple(
        UnfoldedDisjunct(
            (),
            tuple(atom for component in combination for atom in component),
            (),
        )
        for combination in itertools.product(*per_unmarked)
    ) if per_unmarked else ()
    return (
        UcqUnfolding(goal_disjuncts, constraint_disjuncts),
        total_obstructions,
    )


def _obstruction_atoms(
    obstruction: Instance,
    marks: Sequence[RelationSymbol],
    answer_vars: tuple[Variable, ...],
    counter,
) -> tuple[Atom, ...] | None:
    """One obstruction as CQ atoms: ``Pi``-carrying elements become ``xi``.

    An obstruction that places two distinct marks on one element would need
    an equality between answer variables; that never arises for the unary
    (AQ) and Boolean cases routed here, so such obstructions are skipped.
    """
    mark_names = {symbol.name: index for index, symbol in enumerate(marks)}
    variables: dict = {}
    for fact in sorted(obstruction.facts, key=str):
        index = mark_names.get(fact.relation.name)
        if index is None:
            continue
        element = fact.arguments[0]
        if element in variables and variables[element] != answer_vars[index]:
            return None
        variables[element] = answer_vars[index]
    for element in sorted(obstruction.active_domain, key=repr):
        if element not in variables:
            variables[element] = Variable(f"o{next(counter)}")
    return tuple(
        Atom(fact.relation, tuple(variables[a] for a in fact.arguments))
        for fact in sorted(obstruction.facts, key=str)
        if fact.relation.name not in mark_names
    )


# ---------------------------------------------------------------------------
# Stage 3: datalog-rewritability and the (parameterized) canonical program
# ---------------------------------------------------------------------------


def _subset_symbol(
    lattice_index: int, template_index: int, arity: int, prefix: str
) -> RelationSymbol:
    """One predicate per reachable lattice member, named by its *index* in
    the sorted lattice — string-joining element reprs is not injective
    (elements whose reprs contain the separator can alias two distinct
    subsets onto one symbol)."""
    return RelationSymbol(f"{prefix}{template_index}_S{lattice_index}", 1 + arity)


def _parameterized_canonical_program(
    expansion: Instance,
    marks: Sequence[RelationSymbol],
    arity: int,
    template_index: int,
    goal: RelationSymbol,
) -> tuple[list[Rule], Atom | None]:
    """The canonical arc-consistency program of ``coCSP((B, b)^c)``, with the
    mark replaced by answer-variable parameters (Feder–Vardi, Section 5.3).

    The AC run on ``(D, a)^c`` is factored into two predicate families so
    the materialized fixpoint stays near-linear in the data:

    * ``Y_S(v)`` — the **mark-independent** image-set restrictions ("the
      possible template images of ``v`` lie within ``S``"), identical for
      every candidate ``a``: unary-fact restrictions, role range/loop
      restrictions, their propagations and meets.  This is the canonical
      *unary* program of :mod:`repro.csp.canonical_datalog`, restricted to
      the subset lattice actually reachable from the template's seeds.
    * ``X_S(v, a)`` — the restrictions **caused by the mark**: seeded as
      ``X_M(a, a)`` (the expansion's single ``P1(a)`` fact, with ``M`` the
      marked template elements), propagated through roles and met with the
      ``Y`` sets.  ``X`` facts exist only for pairs the mark's restriction
      actually reaches, instead of the full ``adom²`` product a naive
      parameterization materializes.

    ``goal(a)`` fires when a run's image set empties — through ``X_∅`` (the
    mark's restriction contradicts the data) or ``Y_∅`` (the data admits no
    homomorphism into this template at all).  For the Boolean case (no
    marks) the ``X`` family is empty and this is the classical
    construction.  Returns the rules (with the caller-supplied per-template
    ``goal``) plus the ``Y_∅(v)`` failure atom when the empty set is
    reachable — ``None`` means this template's unmarked AC can never fail,
    so it never contributes to inconsistency.
    """
    domain = sorted(expansion.active_domain, key=repr)
    full = frozenset(domain)
    mark_names = {s.name for s in marks}
    roles = [
        symbol
        for symbol in expansion.schema.role_names
        if symbol.name not in mark_names
    ]
    unaries = [
        symbol
        for symbol in expansion.schema.concept_names
        if symbol.name not in mark_names
    ]

    def images(subset: frozenset, pairs) -> tuple[frozenset, frozenset, frozenset]:
        forward = frozenset(b for (a, b) in pairs if a in subset)
        backward = frozenset(a for (a, b) in pairs if b in subset)
        loops = frozenset(a for (a, b) in pairs if a == b and a in subset)
        return forward, backward, loops

    # The reachable subset lattice: seeds are the unary/mark/role-range
    # restrictions; close under role images and pairwise meets.  Only these
    # subsets can ever label an AC set, so only they become predicates.
    role_pairs = {role: expansion.tuples(role) for role in roles}
    seeds: set[frozenset] = set()
    for unary in unaries:
        seeds.add(frozenset(t[0] for t in expansion.tuples(unary)))
    for mark in marks:
        seeds.add(frozenset(t[0] for t in expansion.tuples(mark)))
    for role, pairs in role_pairs.items():
        forward, backward, loops = images(full, pairs)
        seeds.update((forward, backward, loops))
    seeds.discard(full)
    reachable: set[frozenset] = set(seeds)
    frontier = list(seeds)
    while frontier:
        current = frontier.pop()
        derived: list[frozenset] = []
        for pairs in role_pairs.values():
            derived.extend(images(current, pairs))
        derived.extend(current & other for other in list(reachable))
        for subset in derived:
            if subset != full and subset not in reachable:
                reachable.add(subset)
                frontier.append(subset)

    ordered = sorted(reachable, key=lambda s: (len(s), sorted(map(repr, s))))
    lattice_index = {subset: i for i, subset in enumerate(ordered)}

    def y_sym(subset: frozenset) -> RelationSymbol:
        return _subset_symbol(lattice_index[subset], template_index, 0, "ACY")

    def x_sym(subset: frozenset) -> RelationSymbol:
        return _subset_symbol(lattice_index[subset], template_index, arity, "ACX")

    x, y = Variable("x"), Variable("y")
    params = tuple(Variable(f"a{i}") for i in range(arity))
    param_atoms = tuple(Atom(RelationSymbol(ADOM, 1), (p,)) for p in params)
    rules: list[Rule] = []

    def y_atom(subset: frozenset, element) -> Atom:
        return Atom(y_sym(subset), (element,))

    def x_atom(subset: frozenset, element) -> Atom:
        return Atom(x_sym(subset), (element,) + params)

    # -- Y: mark-independent restrictions --------------------------------------
    for unary in unaries:
        allowed = frozenset(t[0] for t in expansion.tuples(unary))
        if allowed != full:
            rules.append(Rule((y_atom(allowed, x),), (Atom(unary, (x,)),)))
    for role, pairs in role_pairs.items():
        forward, backward, loops = images(full, pairs)
        if forward != full:
            rules.append(Rule((y_atom(forward, y),), (Atom(role, (x, y)),)))
        if backward != full:
            rules.append(Rule((y_atom(backward, x),), (Atom(role, (x, y)),)))
        if loops != full:
            rules.append(Rule((y_atom(loops, x),), (Atom(role, (x, x)),)))
        for subset in ordered:
            forward, backward, loops = images(subset, pairs)
            if forward != full:
                rules.append(
                    Rule(
                        (y_atom(forward, y),),
                        (Atom(role, (x, y)), y_atom(subset, x)),
                    )
                )
                rules.append(
                    Rule(
                        (x_atom(forward, y),),
                        (Atom(role, (x, y)), x_atom(subset, x)),
                    )
                )
            if backward != full:
                rules.append(
                    Rule(
                        (y_atom(backward, x),),
                        (Atom(role, (x, y)), y_atom(subset, y)),
                    )
                )
                rules.append(
                    Rule(
                        (x_atom(backward, x),),
                        (Atom(role, (x, y)), x_atom(subset, y)),
                    )
                )
            if loops != full:
                rules.append(
                    Rule(
                        (y_atom(loops, x),),
                        (Atom(role, (x, x)), y_atom(subset, x)),
                    )
                )
                rules.append(
                    Rule(
                        (x_atom(loops, x),),
                        (Atom(role, (x, x)), x_atom(subset, x)),
                    )
                )
    # -- meets: Y∧Y stays mark-free, X∧Y and X∧X stay parameterized.  An
    # X∧Y meet is emitted whenever it sharpens the X side (even when it
    # equals the Y set): the run's *own* restriction must carry the met set
    # forward, because the image of a meet can be strictly smaller than the
    # meet of the images.
    for first, second in itertools.combinations(ordered, 2):
        meet = first & second
        if meet != first and meet != second:
            rules.append(
                Rule((y_atom(meet, x),), (y_atom(first, x), y_atom(second, x)))
            )
            rules.append(
                Rule((x_atom(meet, x),), (x_atom(first, x), x_atom(second, x)))
            )
        if meet != first:
            rules.append(
                Rule((x_atom(meet, x),), (x_atom(first, x), y_atom(second, x)))
            )
        if meet != second:
            rules.append(
                Rule((x_atom(meet, x),), (x_atom(second, x), y_atom(first, x)))
            )
    # -- mark seeding ----------------------------------------------------------
    for index, mark in enumerate(marks):
        allowed = frozenset(t[0] for t in expansion.tuples(mark))
        if allowed != full:
            rules.append(Rule((x_atom(allowed, params[index]),), param_atoms))
    # -- failure: an empty image set anywhere fires this template's goal -------
    empty = frozenset()
    failure_atom: Atom | None = None
    if empty in reachable:
        rules.append(Rule((Atom(goal, params),), (x_atom(empty, x),)))
        rules.append(
            Rule((Atom(goal, params),), (y_atom(empty, x),) + param_atoms)
        )
        failure_atom = y_atom(empty, x)
    # When the empty set is unreachable in the lattice, AC can never fail:
    # this template admits every run, so its goal derives nothing.
    return rules, failure_atom


def _canonical_datalog_rewriting(
    pruned: Sequence[tuple[Instance, tuple[RelationSymbol, ...]]],
    arity: int,
    budget: SemanticBudget,
    deadline: _Deadline,
) -> DisjunctiveDatalogProgram:
    """Combine the per-template canonical programs (Lemma 5.14 closure).

    A tuple is certain iff its run fails for *every* pruned template, so
    the shared ``goal`` conjoins the per-template goals.  The combined
    program additionally carries one *constraint* rule — "every template's
    unmarked AC failed" — which is exactly the no-model condition the
    serving sessions probe through ``is_consistent`` (and the sharded
    merge escalates on); it is omitted, conservatively, when some template
    can never fail, and the consistency half of the cross-validation hook
    arbitrates.
    """
    goal = RelationSymbol(GOAL, arity)
    params = tuple(Variable(f"a{i}") for i in range(arity))
    param_atoms = tuple(Atom(RelationSymbol(ADOM, 1), (p,)) for p in params)
    combined: list[Rule] = []
    template_goals: list[Atom] = []
    failure_atoms: list[Atom] = []
    all_can_fail = True
    for index, (expansion, marks) in enumerate(pruned):
        deadline.check("canonical program construction")
        size = len(expansion.active_domain)
        if size > budget.max_canonical_elements:
            raise BudgetExceeded(
                f"the canonical program over a {size}-element template "
                f"exceeds the {budget.max_canonical_elements}-element budget"
            )
        if any(
            symbol.arity > 2
            for symbol in expansion.schema
            if symbol.name not in {s.name for s in marks}
        ):
            raise _Inapplicable(
                "the canonical arc-consistency construction covers unary "
                "and binary data relations only"
            )
        template_goal = RelationSymbol(f"ACGOAL{index}", arity)
        rules, failure = _parameterized_canonical_program(
            expansion, marks, arity, index, template_goal
        )
        combined.extend(rules)
        template_goals.append(Atom(template_goal, params))
        if failure is None:
            all_can_fail = False
        else:
            failure_atoms.append(failure)
    if all(
        any(rule.head and rule.head[0].relation == atom.relation for rule in combined)
        for atom in template_goals
    ):
        combined.append(Rule((Atom(goal, params),), tuple(template_goals)))
    # else: some template's goal is underivable — no tuple is ever certain,
    # and the goal-rule-free program correctly derives nothing.
    if all_can_fail and failure_atoms:
        # Rename the per-template failure variables apart: the constraint
        # body is a conjunction of independent unary failure atoms.
        constraint_body = tuple(
            Atom(atom.relation, (Variable(f"w{index}"),) + atom.arguments[1:])
            for index, atom in enumerate(failure_atoms)
        )
        combined.append(Rule((), constraint_body))
    return DisjunctiveDatalogProgram(combined, goal_relation=goal)


# ---------------------------------------------------------------------------
# The soundness cross-validation hook
# ---------------------------------------------------------------------------


def _validation_family(schema, budget: SemanticBudget):
    """The deterministic stratified instance family ``cross_validate`` runs.

    Two groups of strata, sharing ``budget.max_validation_instances``:

    * the **base** group (2/3 of the budget): fact counts
      ``0..validation_facts`` over a ``validation_elements`` domain;
    * the **escalation** group (the rest): fact counts
      ``1..validation_facts + 1`` over one more element — one step past
      the largest obstruction bound, where an incomplete obstruction set
      has its smallest missing witnesses.

    Budget is allotted per fact count in ascending order, exhausting small
    strata completely and stride-sampling oversized ones across their full
    lexicographic range (a plain prefix cap would silently drop the
    late-enumerated shapes — all-role triangles and their kin — that the
    family exists to contain).
    """

    def strata(domain, sizes, cap):
        possible = [
            Fact(symbol, args)
            for symbol in schema
            for args in itertools.product(domain, repeat=symbol.arity)
        ]
        remaining_cap = cap
        sizes = [k for k in sizes if k <= len(possible)]
        for position, size in enumerate(sizes):
            if remaining_cap <= 0:
                return
            allotment = max(1, remaining_cap // (len(sizes) - position))
            total = math.comb(len(possible), size)
            stride = max(1, -(-total // allotment))
            taken = 0
            for combination in itertools.islice(
                itertools.combinations(possible, size), 0, None, stride
            ):
                yield Instance(combination, schema=schema)
                taken += 1
            remaining_cap -= taken

    base_cap = (2 * budget.max_validation_instances) // 3
    base_domain = [f"e{i}" for i in range(budget.validation_elements)]
    yield from strata(base_domain, range(budget.validation_facts + 1), base_cap)
    extra_cap = budget.max_validation_instances - base_cap
    extra_domain = [f"e{i}" for i in range(budget.validation_elements + 1)]
    yield from strata(
        extra_domain, range(1, budget.validation_facts + 2), extra_cap
    )


def cross_validate(
    program: DisjunctiveDatalogProgram,
    candidate_plan,
    budget: SemanticBudget = DEFAULT_BUDGET,
    deadline: _Deadline | None = None,
) -> int:
    """Certify a constructed rewriting against the ground+CDCL engine.

    Enumerates a deterministic stratified family of instances over the
    program's EDB schema — per fact count, exhaustive when a stratum fits
    the budget and stride-sampled across the whole stratum otherwise (so
    late-enumerated shapes like all-role triangles are represented), plus
    an escalation stratum with one more element and one more fact than the
    base bounds, which probes *past* the largest obstruction bound (an
    obstruction set that is complete only up to its own bound has its
    smallest missing witnesses there).  On each instance the candidate
    plan is compared against the forced tier-2 behaviour of the original
    program on **both** observable surfaces:

    * the certain answers, and
    * the consistency verdict (does any model extend the data?) — what
      sessions expose as ``is_consistent`` and what the sharded merge
      escalates on, served by the constructed constraint artifacts.

    The schema is extended by one *foreign* unary relation the program
    never mentions, so the family also probes elements that reach the
    active domain (and hence the guess rule and the candidate space)
    without carrying any program-visible fact.  Returns the number of
    instances checked; raises ``ValueError`` on the first divergence.
    The family is a certificate within its bounds, not a proof — sessions
    and tests can call this with their own plans (and budgets) to
    re-certify a routed rewriting at any scale.
    """
    from ..datalog.evaluation import has_model_avoiding
    from .execute import execute_plan
    from .plan import TIER_GROUND_SAT, plan_for_tier

    reference_plan = plan_for_tier(program, TIER_GROUND_SAT)
    schema = program.edb_schema().union(
        [RelationSymbol("Foreign__probe", 1)]
    )
    checked = 0
    for data in _validation_family(schema, budget):
        if deadline is not None and checked % 16 == 0:
            deadline.check("cross-validation")
        expected = execute_plan(reference_plan, data)
        got = execute_plan(candidate_plan, data)
        if got != expected:
            raise ValueError(
                f"rewriting diverges from ground+CDCL on {data!r}: "
                f"{sorted(got, key=repr)} != {sorted(expected, key=repr)}"
            )
        consistent = _plan_consistent(candidate_plan, data)
        if consistent is not None:
            reference_consistent = has_model_avoiding(program, data, [])
            if consistent != reference_consistent:
                raise ValueError(
                    "constructed consistency test diverges from the solver "
                    f"on {data!r}: {consistent} != {reference_consistent}"
                )
        checked += 1
    return checked


def _plan_consistent(plan, data: Instance) -> bool | None:
    """The candidate plan's consistency verdict (None when not SAT-free)."""
    from .execute import constraint_fires, fixpoint_program, unfolding_consistent
    from .plan import TIER_FIXPOINT, TIER_REWRITE

    if plan.tier == TIER_REWRITE and plan.unfolding is not None:
        return unfolding_consistent(plan.unfolding, data)
    if plan.tier == TIER_FIXPOINT:
        constraints = [
            rule for rule in plan.execution_program.rules if rule.is_constraint()
        ]
        fixpoint = fixpoint_program(plan).least_fixpoint(data)
        return not any(constraint_fires(rule, fixpoint) for rule in constraints)
    return None


# ---------------------------------------------------------------------------
# The semantic stage proper
# ---------------------------------------------------------------------------


def analyse_rewritability(
    program: DisjunctiveDatalogProgram,
    budget: SemanticBudget = DEFAULT_BUDGET,
):
    """Attempt to route a syntactic tier-2 program off SAT, constructively.

    Returns a :class:`repro.planner.plan.QueryPlan` — tier 0 carrying an
    obstruction-set UCQ, tier 1 carrying a canonical datalog program, or
    tier 2 with a :class:`SemanticReport` explaining why the program stays
    on the ground+CDCL engine (inapplicable, budget exceeded, genuinely
    unrewritable, or failed cross-validation).

    With telemetry enabled the analysis runs under a
    ``planner.semantic.analyse`` span annotated with the outcome and the
    fraction of the wall-clock budget consumed; the per-phase timings land
    in the ``planner.semantic.phase.*`` histograms (see :class:`_Deadline`).
    """
    tel = _telemetry.ACTIVE
    if tel is None:
        return _analyse_rewritability(program, budget)
    with tel.span(
        "planner.semantic.analyse", time_budget_s=budget.time_budget_s
    ) as handle:
        plan = _analyse_rewritability(program, budget)
        report = plan.semantic
        if report is not None:
            handle.set(
                tier=plan.tier,
                applicable=report.applicable,
                rewriting=report.rewriting,
                elapsed_s=report.elapsed_s,
                budget_consumed=(
                    report.elapsed_s / budget.time_budget_s
                    if budget.time_budget_s
                    else None
                ),
                transient=report.transient,
            )
        return plan


def _analyse_rewritability(
    program: DisjunctiveDatalogProgram,
    budget: SemanticBudget,
):
    from ..core.homomorphism import core as core_of
    from ..csp.canonical_datalog import has_tree_duality
    from ..csp.duality import is_fo_definable_csp
    from ..csp.polymorphisms import has_bounded_width_certificate
    from .plan import QueryPlan, TIER_FIXPOINT, TIER_REWRITE, plan_program
    from .policy import PlanPolicy

    syntactic = plan_program(program, PlanPolicy(semantic=False))
    deadline = _Deadline(budget.time_budget_s)

    def stay(rationale: str, applicable: bool = False, **fields) -> QueryPlan:
        report = SemanticReport(
            applicable=applicable,
            rationale=rationale,
            elapsed_s=deadline.elapsed,
            **fields,
        )
        return replace(syntactic, semantic=report)

    try:
        deadline.check("applicability analysis")
        family = _templates_for(program, budget, deadline)
        pruned = _prune_expansions(family, deadline)
        sizes = tuple(len(e.active_domain) for e, _ in pruned)

        fo = True
        for expansion, _marks in pruned:
            deadline.check("FO-rewritability test")
            if not is_fo_definable_csp(expansion):
                fo = False
                break
        if fo:
            validation_failure: str | None = None
            for bound in budget.obstruction_bounds:
                deadline.check("obstruction-set construction")
                constructed = _obstruction_ucq_at(
                    pruned, family.unmarked, family.arity, bound, budget, deadline
                )
                if constructed is None:
                    continue  # some template had no obstruction: larger bound
                unfolding, obstructions = constructed
                candidate = QueryPlan(
                    TIER_REWRITE,
                    "semantic routing (Theorem 5.10 via finite duality): "
                    "FO-rewritable; obstruction-set UCQ with "
                    f"{len(unfolding.goal_disjuncts)} disjunct(s) over "
                    f"{len(pruned)} template(s) runs on the tier-0 executor",
                    program,
                    syntactic.shape,
                    unfolding,
                )
                try:
                    validated = cross_validate(program, candidate, budget, deadline)
                except ValueError as error:
                    # Incomplete set at this bound (the UCQ misses answers);
                    # a larger bound may complete it.
                    validation_failure = str(error)
                    continue
                report = SemanticReport(
                    applicable=True,
                    rationale="FO-rewritable (finite duality of every pruned "
                    "template expansion); serving the obstruction-set UCQ "
                    f"(obstructions bounded by {bound})",
                    route=family.route,
                    fo_rewritable=True,
                    datalog_rewritable=True,
                    rewriting="obstruction-ucq",
                    templates=len(pruned),
                    template_elements=sizes,
                    obstructions=obstructions,
                    validated_instances=validated,
                    elapsed_s=deadline.elapsed,
                )
                return replace(candidate, semantic=report)
            if validation_failure is not None:
                return stay(
                    "obstruction UCQ failed cross-validation at every bound "
                    f"in {budget.obstruction_bounds} (the bounded set is "
                    f"incomplete): {validation_failure}",
                    applicable=True,
                    route=family.route,
                    fo_rewritable=True,
                    templates=len(pruned),
                    template_elements=sizes,
                )

        # Datalog rewritability: bounded width of every pruned core decides
        # (Theorem 5.10); tree duality (width 1, Feder–Vardi) additionally
        # gates the *construction* — the canonical arc-consistency program
        # is a complete rewriting exactly for tree-duality templates, and
        # K2-style bounded-width-2 templates must not be served by it.
        datalog = True
        width_one = True
        for expansion, _marks in pruned:
            deadline.check("bounded-width certificate")
            kernel = core_of(expansion)
            if not kernel.active_domain:
                continue
            if len(kernel.active_domain) > budget.max_width_elements:
                raise BudgetExceeded(
                    f"a {len(kernel.active_domain)}-element core exceeds the "
                    f"{budget.max_width_elements}-element bounded-width budget"
                )
            if not has_bounded_width_certificate(kernel):
                datalog = False
                break
            if width_one:
                # The tree-duality test searches a homomorphism from the
                # 2^n−1-element power structure; gate it at the canonical
                # construction's own bound (whose lattice is the same
                # 2^n object) so the power structure stays ≤ 31 elements.
                if len(kernel.active_domain) > budget.max_canonical_elements:
                    raise BudgetExceeded(
                        f"the tree-duality test over a "
                        f"{len(kernel.active_domain)}-element core exceeds "
                        f"the {budget.max_canonical_elements}-element budget"
                    )
                deadline.check("tree-duality test")
                if not has_tree_duality(kernel, assume_core=True):
                    width_one = False
        if datalog and not width_one:
            report = SemanticReport(
                applicable=True,
                rationale="datalog-rewritable (bounded width) but past width "
                "1: the constructible arc-consistency rewriting would be "
                "incomplete (no tree duality), and the canonical "
                "(k, k+1)-programs are not materialized; staying on "
                "ground+CDCL",
                route=family.route,
                fo_rewritable=fo,
                datalog_rewritable=True,
                templates=len(pruned),
                template_elements=sizes,
                elapsed_s=deadline.elapsed,
            )
            return replace(syntactic, semantic=report)
        if datalog:
            deadline.check("canonical program construction")
            rewritten = _canonical_datalog_rewriting(
                pruned, family.arity, budget, deadline
            )
            candidate = QueryPlan(
                TIER_FIXPOINT,
                "semantic routing (Theorem 5.10 via bounded width): "
                "datalog-rewritable; the canonical arc-consistency program "
                f"({len(rewritten.rules)} rules over {len(pruned)} "
                "template(s)) runs on the tier-1 fixpoint",
                program,
                syntactic.shape,
                rewritten=rewritten,
            )
            try:
                validated = cross_validate(program, candidate, budget, deadline)
            except ValueError as error:
                return stay(
                    "canonical datalog program failed cross-validation "
                    f"(arc consistency is complete for width 1 only): {error}",
                    applicable=True,
                    route=family.route,
                    fo_rewritable=fo,
                    datalog_rewritable=True,
                    templates=len(pruned),
                    template_elements=sizes,
                )
            report = SemanticReport(
                applicable=True,
                rationale="datalog-rewritable (bounded-width certificate on "
                "every pruned core); serving the canonical datalog program",
                route=family.route,
                fo_rewritable=fo,
                datalog_rewritable=True,
                rewriting="canonical-datalog",
                templates=len(pruned),
                template_elements=sizes,
                validated_instances=validated,
                elapsed_s=deadline.elapsed,
            )
            return replace(candidate, semantic=report)

        report = SemanticReport(
            applicable=True,
            rationale="semantically confirmed disjunctive: neither FO- nor "
            "datalog-rewritable (no finite duality, no bounded-width "
            "certificate); the ground+CDCL tier is required",
            route=family.route,
            fo_rewritable=fo,
            datalog_rewritable=False,
            templates=len(pruned),
            template_elements=sizes,
            elapsed_s=deadline.elapsed,
        )
        return replace(syntactic, semantic=report)
    except DeadlineExceeded as limit:
        return stay(
            f"semantic budget exceeded: {limit}; staying on ground+CDCL",
            transient=True,
        )
    except BudgetExceeded as limit:
        return stay(f"semantic budget exceeded: {limit}; staying on ground+CDCL")
    except _Inapplicable as reason:
        return stay(f"semantic analysis inapplicable: {reason}")
