"""One frozen policy object for every planner-facing knob.

Before this module the planner's knobs were sprawled across entry points as
grown-over keyword arguments: ``force_tier=`` here, ``semantic=`` /
``semantic_budget=`` there, ``check=`` on sessions, ``parallel=`` /
``chunk_size=`` on ``evaluate``.  :class:`PlanPolicy` folds them into a
single frozen dataclass accepted (as ``policy=``) by every public entry
point — :class:`~repro.service.session.ObdaSession`,
:class:`~repro.service.shards.ShardedObdaSession`,
:func:`~repro.datalog.evaluation.evaluate`,
:func:`~repro.planner.plan.plan_program` and
:func:`~repro.obda.applications.serve_omq_workload` — plus the two knobs
this PR introduces: :class:`AdaptivePolicy` (live re-planning of serving
sessions, see :mod:`repro.planner.adaptive`) and :class:`UnfoldCaps`
(cost-based tier-0 unfolding limits, see
:func:`repro.planner.analysis.effective_unfold_caps`).

The legacy keyword arguments still work, as *deprecated aliases*: each
entry point routes them through :func:`resolve_policy`, which constructs
the equivalent policy and emits one :class:`DeprecationWarning` naming the
offending keywords.  Passing both ``policy=`` and a legacy keyword is a
``TypeError`` — there is exactly one source of truth.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .semantic import SemanticBudget


class _Unset:
    """Sentinel distinguishing "legacy kwarg not passed" from ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()


@dataclass(frozen=True)
class UnfoldCaps:
    """Limits on the tier-0 UCQ unfolding.

    ``max_disjuncts`` / ``max_atoms`` pin the caps exactly (the historical
    fixed behavior is ``UnfoldCaps(256, 24)``).  Leaving either ``None``
    delegates to the cost model
    (:func:`repro.planner.analysis.effective_unfold_caps`): the unfolding
    size is estimated from the IDB call graph and admitted when its
    work — disjuncts x atoms — stays within ``work_budget`` or within a
    constant factor of the fixpoint alternative's per-read cost.
    """

    max_disjuncts: int | None = None
    max_atoms: int | None = None
    work_budget: float | None = None


@dataclass(frozen=True)
class AdaptivePolicy:
    """Hysteresis knobs for live re-planning of serving sessions.

    A session with an adaptive policy watches its rolling read/insert/
    delete mix (``SessionStats``) and re-plans a query onto a cheaper tier
    when the observed mix crosses a breakeven — see
    :mod:`repro.planner.adaptive`.  The knobs exist so the controller
    *never flaps*:

    * ``mix_window`` — how many of the most recent events form the trigger
      mix (bounded by the stats ring buffer, 256);
    * ``min_dwell`` — events that must pass on the current tier (since
      session start or the last swap) before another swap is considered;
    * ``cost_gap`` — the predicted cost of the current tier must exceed
      the best candidate's by this factor, so near-ties never trigger;
    * ``warmup`` — events before the first decision (the model has no
      observations yet);
    * ``max_replans`` — optional hard cap on swaps per query (``None`` =
      unlimited).
    """

    mix_window: int = 24
    min_dwell: int = 16
    cost_gap: float = 1.8
    warmup: int = 8
    max_replans: int | None = None

    def __post_init__(self) -> None:
        if self.mix_window < 1:
            raise ValueError("mix_window must be at least 1")
        if self.min_dwell < 0:
            raise ValueError("min_dwell must be non-negative")
        if self.cost_gap < 1.0:
            raise ValueError("cost_gap below 1.0 would invite flapping")


#: The policy ``adaptive=True`` resolves to.
DEFAULT_ADAPTIVE = AdaptivePolicy()


@dataclass(frozen=True)
class PlanPolicy:
    """Every planner/serving knob in one frozen, reusable object.

    All fields default to ``None`` — "use the entry point's default" — so
    ``PlanPolicy()`` is exactly the historical default behavior
    everywhere.  Fields:

    * ``tier`` — pin one planner tier (the old ``force_tier=``); forcing
      bypasses the semantic stage and **pins** the session: adaptive
      re-planning is disabled with a rationale in ``explain()``.
    * ``semantic`` / ``semantic_budget`` — the semantic rewritability
      stage (:mod:`repro.planner.semantic`) and its budget.
    * ``check`` — static-analyzer mode (``"off"`` / ``"warn"`` /
      ``"strict"``); ``None`` means the entry point's default (sessions
      ``"warn"``, bare planning ``"off"``).
    * ``parallel`` / ``chunk_size`` — tier-2 worker-pool controls
      (``evaluate`` and the parallel executors).
    * ``adaptive`` — ``True`` / an :class:`AdaptivePolicy` to enable live
      re-planning in serving sessions; ``None`` / ``False`` disables it.
    * ``unfold_caps`` — tier-0 unfolding limits (:class:`UnfoldCaps`);
      ``None`` uses the cost-based default.
    """

    tier: int | None = None
    semantic: bool | None = None
    semantic_budget: "SemanticBudget | None" = None
    check: str | None = None
    parallel: int | str | None = None
    chunk_size: int | None = None
    adaptive: "AdaptivePolicy | bool | None" = None
    unfold_caps: UnfoldCaps | None = None

    def resolved_adaptive(self) -> AdaptivePolicy | None:
        """The effective adaptive policy, or ``None`` when disabled."""
        if self.adaptive is None or self.adaptive is False:
            return None
        if self.adaptive is True:
            return DEFAULT_ADAPTIVE
        return self.adaptive

    def resolved_check(self, default: str) -> str:
        return self.check if self.check is not None else default

    def planning_view(self) -> "PlanPolicy":
        """The policy as :func:`plan_program` should see it from a session.

        Sessions vet programs themselves (with their own ``"warn"``
        default), so the check is stripped before planning to avoid
        vetting the same program twice.
        """
        if self.check is None:
            return self
        return replace(self, check=None)


#: Maps each legacy keyword name to its :class:`PlanPolicy` field.
LEGACY_KWARG_FIELDS: Mapping[str, str] = {
    "force_tier": "tier",
    "semantic": "semantic",
    "semantic_budget": "semantic_budget",
    "budget": "semantic_budget",
    "check": "check",
    "parallel": "parallel",
    "chunk_size": "chunk_size",
}

_POLICY_FIELDS = frozenset(f.name for f in fields(PlanPolicy))


def resolve_policy(
    policy: PlanPolicy | None,
    legacy: Mapping[str, object],
    where: str,
) -> PlanPolicy:
    """Fold legacy keyword arguments and ``policy=`` into one policy.

    ``legacy`` maps legacy keyword *names* to their values, ``_UNSET``
    standing for "not passed".  Passing any legacy keyword emits a single
    :class:`DeprecationWarning` naming them all; combining legacy keywords
    with ``policy=`` raises ``TypeError`` (two sources of truth).
    """
    supplied = {
        name: value for name, value in legacy.items() if value is not _UNSET
    }
    if not supplied:
        return policy if policy is not None else PlanPolicy()
    if policy is not None:
        raise TypeError(
            f"{where}: pass either policy=PlanPolicy(...) or the deprecated "
            f"keyword(s) {sorted(supplied)}, not both"
        )
    mapped: dict[str, object] = {}
    for name, value in supplied.items():
        field_name = LEGACY_KWARG_FIELDS.get(name, name)
        if field_name not in _POLICY_FIELDS:
            raise TypeError(f"{where}: unknown legacy keyword {name!r}")
        mapped[field_name] = value
    rendered = ", ".join(
        f"{LEGACY_KWARG_FIELDS.get(name, name)}=..." for name in sorted(supplied)
    )
    warnings.warn(
        f"{where}: keyword argument(s) {', '.join(sorted(supplied))} are "
        f"deprecated; pass policy=PlanPolicy({rendered}) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return PlanPolicy(**mapped)  # type: ignore[arg-type]
