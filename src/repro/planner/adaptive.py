"""Workload-adaptive re-planning: the cost model and swap controller.

The planner picks a tier once per compiled program, but the *right* tier
depends on the stream being served: the semantic canonical-datalog tier
wins read-heavy serving by an order of magnitude and loses delete-heavy
churn by another (``benchmarks/results/SEMANTIC_ROUTING.json`` records
both directions).  This module closes the loop:

* :func:`candidate_plans` enumerates every *sound* tier for a compiled
  program — the planner's natural (possibly semantic) plan plus each
  forceable tier — so a controller always swaps between plans that were
  proven to compute identical certain answers;
* :class:`TierCostModel` prices one serving event per (tier, op ∈
  read/insert/delete).  Prices start from :class:`~repro.planner.plan
  .CostEstimate` statics (:func:`static_rates`) and are *calibrated*
  against the observed per-op mean seconds of
  :meth:`repro.service.session.SessionStats.rollup` — the
  ``obda-session-rollup/v1`` contract built for exactly this consumer:
  once a tier has served an op its observed mean replaces the static, and
  a scale factor fitted on the observed (tier, op) pairs converts the
  remaining statics into comparable predicted seconds;
* :class:`AdaptiveController` watches the rolling mix over the last
  ``mix_window`` events and proposes a swap when the predicted per-event
  cost of the current tier exceeds the best candidate's by the policy's
  ``cost_gap`` — with a ``min_dwell`` epoch floor between swaps and a
  ``warmup`` before the first, so the session never flaps
  (:class:`~repro.planner.policy.AdaptivePolicy` holds the knobs).

The controller only *decides*; the hot state swap itself —
``_SatState``/``_FixpointState``/``_UcqState`` rebuilt from the current
frozen instance with warm join-plan caches transplanted — lives in
:meth:`repro.service.session.ObdaSession`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..core.instance import Instance
from .plan import (
    TIER_FIXPOINT,
    TIER_GROUND_SAT,
    TIER_NAMES,
    TIER_REWRITE,
    QueryPlan,
    estimate_cost,
    plan_for_tier,
)
from .policy import AdaptivePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.session import SessionStats

#: The serving ops the model prices; ``query`` is the "read" of the
#: read/insert/delete mix (the op names match ``SessionStats`` events).
OPS = ("query", "insert", "delete")


def candidate_plans(program, natural: QueryPlan) -> dict[int, QueryPlan]:
    """Every sound tier's plan for a program, keyed by tier.

    ``natural`` (the planner's own — possibly semantic — choice) claims
    its tier; the remaining tiers are filled by :func:`plan_for_tier`,
    which raises ``ValueError`` exactly when a tier is unsound for the
    program — those are skipped, so swapping between the returned plans
    can never change answers.
    """
    candidates = {natural.tier: natural}
    for tier in (TIER_REWRITE, TIER_FIXPOINT, TIER_GROUND_SAT):
        if tier in candidates:
            continue
        try:
            candidates[tier] = plan_for_tier(program, tier)
        except ValueError:
            continue
    return candidates


@dataclass(frozen=True)
class TierRates:
    """Static per-op work scores (unitless) for one tier's plan."""

    read: float
    insert: float
    delete: float

    def get(self, op: str) -> float:
        if op == "query":
            return self.read
        return self.insert if op == "insert" else self.delete


def static_rates(plan: QueryPlan, instance: Instance) -> TierRates:
    """Price one read/insert/delete on a tier from the cost estimate.

    The asymmetry between tiers *is* the model:

    * tier 0 pays its join cost per read and nothing per update
      (stateless);
    * tier 1 reads from the warm materialization (a goal-relation scan,
      ~domain-sized), pays a semi-naive round per insert, and a DRed
      over-delete/re-derive — bounded by the whole IDB — per delete;
    * tier 2 pays the grounded work score per read (|adom|^arity
      candidate decisions against the solver), delta grounding per
      insert, and an O(1) guard retraction per delete.
    """
    cost = estimate_cost(plan, instance)
    if plan.tier == TIER_REWRITE:
        return TierRates(read=cost.join_cost + 1.0, insert=1.0, delete=1.0)
    if plan.tier == TIER_FIXPOINT:
        return TierRates(
            read=cost.domain_size + 1.0,
            insert=math.sqrt(max(cost.fixpoint_bound, 0.0)) + 1.0,
            delete=cost.fixpoint_bound + 1.0,
        )
    return TierRates(
        read=cost.tier2_work_score + 1.0,
        insert=cost.ground_clauses + 1.0,
        delete=2.0,
    )


class TierCostModel:
    """Predicted seconds-per-event for every candidate tier under a mix.

    Statics come from :func:`static_rates`; observations are per-(tier,
    op) mean seconds attributed by the controller from the session's
    rollup deltas.  ``predict`` prefers an observed mean and falls back
    to ``static x scale``, where ``scale`` is the geometric mean of
    observed/static ratios over all calibrated (tier, op) pairs — with no
    observations at all the scale is 1.0 and the comparison is purely
    static, which is still consistent across tiers.
    """

    def __init__(self, candidates: Mapping[int, QueryPlan]) -> None:
        self.candidates = dict(candidates)
        self._observed: dict[tuple[int, str], list[float]] = {}
        self._static_cache: dict[tuple[int, int], TierRates] = {}
        self._obs_generation = 0
        self._scale_cache: tuple[int, int, float] | None = None

    def observe(self, tier: int, op: str, count: int, seconds: float) -> None:
        """Fold ``count`` events totalling ``seconds`` into (tier, op)."""
        if count <= 0:
            return
        bucket = self._observed.setdefault((tier, op), [0.0, 0.0])
        bucket[0] += count
        bucket[1] += seconds
        self._obs_generation += 1

    def observed_mean(self, tier: int, op: str) -> float | None:
        bucket = self._observed.get((tier, op))
        if bucket is None or bucket[0] <= 0:
            return None
        return bucket[1] / bucket[0]

    def _statics(self, tier: int, instance: Instance) -> TierRates:
        # Keyed by domain size: fine-grained enough for trigger decisions,
        # coarse enough not to re-walk the rules on every event.
        key = (tier, len(instance.active_domain))
        rates = self._static_cache.get(key)
        if rates is None:
            rates = static_rates(self.candidates[tier], instance)
            self._static_cache[key] = rates
        return rates

    def _scale(self, instance: Instance) -> float:
        """Seconds-per-static-work-unit fitted on the calibrated pairs."""
        key = (self._obs_generation, len(instance.active_domain))
        if self._scale_cache is not None and self._scale_cache[:2] == key:
            return self._scale_cache[2]
        log_sum, pairs = 0.0, 0
        for (tier, op), (count, seconds) in list(self._observed.items()):
            if count <= 0 or seconds <= 0.0:
                continue
            static = self._statics(tier, instance).get(op)
            if static <= 0.0:
                continue
            log_sum += math.log((seconds / count) / static)
            pairs += 1
        scale = math.exp(log_sum / pairs) if pairs else 1.0
        self._scale_cache = (*key, scale)
        return scale

    def predict(
        self, tier: int, mix: Mapping[str, float], instance: Instance
    ) -> float:
        """Expected cost of one event on ``tier`` under the given mix."""
        statics = self._statics(tier, instance)
        scale = self._scale(instance)
        cost = 0.0
        for op in OPS:
            weight = mix.get(op, 0.0)
            if weight <= 0.0:
                continue
            observed = self.observed_mean(tier, op)
            per_event = observed if observed is not None else statics.get(op) * scale
            cost += weight * per_event
        return cost


@dataclass
class ReplanDecision:
    """One proposed swap: the target plan plus the explainable trigger."""

    plan: QueryPlan
    record: dict = field(default_factory=dict)


class AdaptiveController:
    """Per-query re-planning state machine driven by the session stats.

    The owning session calls :meth:`propose` after every recorded event;
    the controller calibrates the cost model from the rollup delta since
    its last look (attributed to the tier that served those events),
    applies the hysteresis gates, and either returns a
    :class:`ReplanDecision` or ``None``.  The session performs the swap
    and confirms it with :meth:`commit`.
    """

    def __init__(
        self,
        name: str,
        plan: QueryPlan,
        policy: AdaptivePolicy,
        candidates: Mapping[int, QueryPlan],
    ) -> None:
        self.name = name
        self.plan = plan
        self.policy = policy
        self.model = TierCostModel(candidates)
        self.history: list[dict] = []
        self.suppressed = {"dwell": 0, "gap": 0, "cap": 0}
        self._baseline: dict[str, tuple[int, float]] = {
            op: (0, 0.0) for op in OPS
        }
        self._events_seen = 0
        self._events_at_swap = 0
        self._last_evaluated = 0
        self._stride = 1

    @property
    def tier(self) -> int:
        return self.plan.tier

    def _calibrate(self, stats: "SessionStats") -> int:
        """Attribute the per-op count/seconds delta since the last look to
        the current tier; returns the total events seen so far.

        Reads the cumulative ``stats.totals`` table directly — the same
        observed means that ``SessionStats.rollup()`` folds into the
        ``obda-session-rollup/v1`` export, without building the rollup
        document on the hot path.
        """
        total = 0
        for op in OPS:
            entry = stats.totals[op]
            count, seconds = entry["count"], entry["seconds"]
            total += count
            seen_count, seen_seconds = self._baseline[op]
            self.model.observe(
                self.tier, op, count - seen_count, seconds - seen_seconds
            )
            self._baseline[op] = (count, seconds)
        self._events_seen = total
        return total

    def _recent_mix(self, stats: "SessionStats") -> dict[str, float]:
        window = list(stats.events)[-self.policy.mix_window :]
        if not window:
            return {}
        mix: dict[str, float] = {op: 0.0 for op in OPS}
        for event in window:
            mix[event["op"]] += 1.0
        return {op: count / len(window) for op, count in mix.items()}

    def propose(
        self, stats: "SessionStats", instance: Instance
    ) -> ReplanDecision | None:
        """Calibrate, then decide whether the current tier should change.

        Runs after *every* recorded event, so the common no-decision path
        must cost next to nothing: the gates read only the cumulative op
        counters, and the full evaluation (rollup calibration + per-tier
        cost prediction) runs on an exponential-backoff stride — reset to
        every event around a swap, doubling up to twice ``mix_window``
        while the verdict is "stay".  The mix cannot materially change
        faster than the window refills, so the backoff delays a genuine
        flip by at most two windows of events.
        """
        total = sum(stats.totals[op]["count"] for op in OPS)
        if total < self.policy.warmup:
            return None
        if total - self._events_at_swap < self.policy.min_dwell:
            self.suppressed["dwell"] += 1
            return None
        if (
            self.policy.max_replans is not None
            and len(self.history) >= self.policy.max_replans
        ):
            self.suppressed["cap"] += 1
            return None
        if total - self._last_evaluated < self._stride:
            return None
        self._last_evaluated = total
        total = self._calibrate(stats)
        mix = self._recent_mix(stats)
        if not mix:
            return None
        costs = {
            tier: self.model.predict(tier, mix, instance)
            for tier in self.model.candidates
        }
        best = min(costs, key=lambda tier: (costs[tier], tier))
        if best == self.tier:
            self._stride = min(self._stride * 2, 2 * self.policy.mix_window)
            return None
        current_cost = costs[self.tier]
        if current_cost < self.policy.cost_gap * costs[best]:
            self.suppressed["gap"] += 1
            self._stride = min(self._stride * 2, 2 * self.policy.mix_window)
            return None
        self._stride = 1
        return ReplanDecision(
            plan=self.model.candidates[best],
            record={
                "event": total,
                "epoch": stats.epoch,
                "from_tier": self.tier,
                "to_tier": best,
                "trigger_mix": {op: round(mix.get(op, 0.0), 4) for op in OPS},
                "predicted_cost": {
                    TIER_NAMES[tier]: cost for tier, cost in sorted(costs.items())
                },
            },
        )

    def commit(self, decision: ReplanDecision, swap_s: float) -> None:
        """The session swapped state; record it and restart the dwell."""
        self.plan = decision.plan
        record = dict(decision.record)
        record["swap_s"] = swap_s
        self.history.append(record)
        self._events_at_swap = self._events_seen

    def describe(self) -> dict:
        """The JSON-able ``adaptive`` block of ``explain()`` for one query."""
        return {
            "enabled": True,
            "tier": self.tier,
            "tier_name": self.plan.tier_name,
            "candidates": sorted(self.model.candidates),
            "policy": {
                "mix_window": self.policy.mix_window,
                "min_dwell": self.policy.min_dwell,
                "cost_gap": self.policy.cost_gap,
                "warmup": self.policy.warmup,
                "max_replans": self.policy.max_replans,
            },
            "replans": len(self.history),
            "history": [dict(record) for record in self.history],
            "last_trigger": (
                dict(self.history[-1]["trigger_mix"]) if self.history else None
            ),
            "suppressed": dict(self.suppressed),
        }
