"""Tiered query plans: route a compiled program to its cheapest engine.

The paper's Section 5 dichotomy separates OMQs that are FO-rewritable,
datalog-rewritable, and genuinely disjunctive (coNP via MDDlog/CSP).  The
planner is the runtime mirror of that classification over *compiled*
disjunctive datalog programs:

* **tier 0** (``ucq-rewrite``) — nonrecursive, disjunction-free: the goal
  (and every constraint) unfolds into a UCQ over the EDB relations, which
  is evaluated directly against the instance indexes with the engine's
  join planner.  No grounding, no SAT, and nothing to maintain under
  streaming updates.
* **tier 1** (``datalog-fixpoint``) — disjunction-free but recursive (or
  past the unfolding caps): semi-naive least-fixpoint evaluation
  (:mod:`repro.datalog.plain`), DRed-maintained in serving sessions.
  Constraints are checked against the materialized fixpoint — rule bodies
  are positive, so a constraint firing in the minimal model fires in every
  model, and the certain answers are vacuously all tuples over the active
  domain (exactly the engine's convention for unsatisfiable programs).
* **tier 2** (``ground+cdcl``) — everything else: the ground-once +
  incremental CDCL engine (serial, worker-pool parallel, or sharded).

Syntactic tier-2 programs additionally pass through the *semantic* stage
(:mod:`repro.planner.semantic`), which runs the paper's Section 5.3
rewritability procedures and, on success, materializes the rewriting — an
obstruction-set UCQ served by tier 0, or a canonical datalog program served
by tier 1 — so Theorem 3.3 compilations of FO-/datalog-rewritable OMQs
route off SAT despite their disjunctive guess rules.

Plans are cached per compiled program object, so a workload compiled once
into a session (or shared across shards) is planned once.  Cost estimates
come from the instance's per-relation / per-position index statistics via
:func:`estimate_cost` and make the plan explainable; they also drive the
``parallel="auto"`` worker-count choice of the tier-2 paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.cq import Variable
from ..core.instance import Instance
from ..datalog.ddlog import ADOM, DisjunctiveDatalogProgram
from ..engine.grounder import _free_variable_blocks, _split_body
from ..engine.joins import _estimated_rows, order_atoms
from ..engine.parallel import resolve_workers
from ..obs import telemetry as _telemetry
from .analysis import (
    ProgramShape,
    UcqUnfolding,
    analyse_program,
    effective_unfold_caps,
    unfold_to_ucq,
)
from .policy import _UNSET, PlanPolicy, UnfoldCaps, resolve_policy
from .semantic import DEFAULT_BUDGET, SemanticBudget, SemanticReport

TIER_REWRITE = 0
TIER_FIXPOINT = 1
TIER_GROUND_SAT = 2
TIER_NAMES = {
    TIER_REWRITE: "ucq-rewrite",
    TIER_FIXPOINT: "datalog-fixpoint",
    TIER_GROUND_SAT: "ground+cdcl",
}

# Below this tier-2 work score (estimated ground clauses x candidate
# tuples) a worker pool costs more to start than it saves.
AUTO_PARALLEL_THRESHOLD = 2_000_000.0


@dataclass(frozen=True)
class CostEstimate:
    """Instance-statistics-based cost figures for one plan.

    All figures are estimates from the index statistics (relation
    cardinalities and per-position bucket sizes), not measurements: they
    explain *why* a tier is cheap and size the tier-2 work score.
    """

    tier: int
    domain_size: int
    candidates: int
    join_cost: float
    ground_clauses: float
    fixpoint_bound: float

    @property
    def tier2_work_score(self) -> float:
        """The score ``parallel="auto"`` compares against the threshold."""
        return self.ground_clauses * max(1, self.candidates)

    def describe(self) -> dict:
        return {
            "tier": self.tier,
            "domain_size": self.domain_size,
            "candidates": self.candidates,
            "estimated_join_cost": round(self.join_cost, 1),
            "estimated_ground_clauses": round(self.ground_clauses, 1),
            "fixpoint_bound": round(self.fixpoint_bound, 1),
        }


@dataclass(frozen=True)
class QueryPlan:
    """An explainable routing decision for one compiled program.

    Plans produced by the semantic stage (:mod:`repro.planner.semantic`)
    additionally carry the constructed artifact — ``unfolding`` holds an
    obstruction-set UCQ for tier 0, ``rewritten`` a canonical datalog
    program for tier 1 — plus the :class:`SemanticReport` documenting the
    decision and its cross-validation.
    """

    tier: int
    rationale: str
    program: DisjunctiveDatalogProgram = field(repr=False)
    shape: ProgramShape
    unfolding: UcqUnfolding | None = field(repr=False, default=None)
    rewritten: DisjunctiveDatalogProgram | None = field(repr=False, default=None)
    semantic: SemanticReport | None = field(default=None)

    @property
    def tier_name(self) -> str:
        return TIER_NAMES[self.tier]

    @property
    def skips_sat(self) -> bool:
        return self.tier != TIER_GROUND_SAT

    @property
    def execution_program(self) -> DisjunctiveDatalogProgram:
        """The program the tier executor actually runs.

        The original compiled program, unless the semantic stage
        materialized a datalog rewriting — then that rewriting (whose
        certain answers were cross-validated to agree) runs instead.
        """
        return self.rewritten if self.rewritten is not None else self.program

    def describe(self) -> dict:
        """A JSON-able explanation (what sessions expose as ``explain()``)."""
        info = {
            "tier": self.tier,
            "tier_name": self.tier_name,
            "rationale": self.rationale,
            "rules": self.shape.rule_count,
            "constraints": self.shape.constraint_count,
            "disjunctive_rules": self.shape.disjunctive_rule_count,
            "recursive_relations": list(self.shape.recursive_relations),
        }
        if self.unfolding is not None:
            info["unfolded_goal_disjuncts"] = len(self.unfolding.goal_disjuncts)
            info["unfolded_constraint_disjuncts"] = len(
                self.unfolding.constraint_disjuncts
            )
        if self.rewritten is not None:
            info["rewritten_rules"] = len(self.rewritten.rules)
        if self.semantic is not None:
            info["semantic"] = self.semantic.describe()
        return info


#: Whether ``plan_program(program)`` runs the semantic stage on syntactic
#: tier-2 programs by default (``semantic=True/False`` overrides per call).
SEMANTIC_ROUTING_DEFAULT = True

# Plans are cached as private attributes *on the program object* rather
# than in a module-level mapping: a QueryPlan strongly references its
# program, so a (weak-keyed) global cache whose values point back at the
# keys would keep every program — and its materialized rewritings — alive
# forever.  Attribute storage couples the cache entry's lifetime to the
# program's own.  Syntactic plans are keyed by the resolved unfolding
# caps (the cost model's — or an explicit ``UnfoldCaps`` — decision);
# semantic plans by budget.
_SYNTACTIC_PLANS_ATTR = "_planner_syntactic_plans"
_SEMANTIC_PLANS_ATTR = "_planner_semantic_plans"


def plan_program(
    program: DisjunctiveDatalogProgram,
    policy: PlanPolicy | None = None,
    *,
    semantic=_UNSET,
    budget=_UNSET,
    check=_UNSET,
) -> QueryPlan:
    """The (cached) cheapest-correct-engine plan for a compiled program.

    All knobs arrive through ``policy`` (:class:`PlanPolicy`); the
    ``semantic=`` / ``budget=`` / ``check=`` keywords are deprecated
    aliases that construct an equivalent policy and warn.  A policy with
    ``tier`` set delegates to :func:`plan_for_tier` (forced tiers bypass
    the semantic stage entirely).

    Syntactic classification always runs first (and is cached on the
    program object, per resolved unfolding caps).  When it lands on tier 2
    and ``policy.semantic`` is enabled (the default, see
    ``SEMANTIC_ROUTING_DEFAULT``), the semantic stage of
    :mod:`repro.planner.semantic` attempts to *construct* an FO- or
    datalog-rewriting within the budget and route the program to tier 0/1;
    otherwise — inapplicable, budget exceeded, genuinely disjunctive, or
    failed cross-validation — the syntactic tier-2 plan is returned with
    the semantic verdict attached.  Semantic plans are cached per
    (program, budget) pair, except *transient* verdicts (a tripped
    wall-clock deadline, which says more about machine load than about the
    program): those are re-analysed on the next call instead of pinning a
    rewritable query to tier 2 for the program's lifetime.

    ``policy.check`` runs the static analyzer first: ``"strict"`` raises
    :class:`repro.analysis.ProgramAnalysisError` on error-severity
    diagnostics before any classification work, ``"warn"`` reports them as
    Python warnings, ``"off"`` (the default here) trusts the caller.
    """
    policy = resolve_policy(
        policy,
        {"semantic": semantic, "budget": budget, "check": check},
        where="plan_program",
    )
    if policy.tier is not None:
        return plan_for_tier(program, policy.tier, caps=policy.unfold_caps)
    resolved_check = policy.resolved_check("off")
    if resolved_check != "off":
        from ..analysis import vet_program

        vet_program(program, resolved_check, label="plan_program")
    tel = _telemetry.ACTIVE
    caps_key = effective_unfold_caps(program, policy.unfold_caps)
    syntactic_plans = getattr(program, _SYNTACTIC_PLANS_ATTR, None)
    if syntactic_plans is None:
        syntactic_plans = {}
        setattr(program, _SYNTACTIC_PLANS_ATTR, syntactic_plans)
    plan = syntactic_plans.get(caps_key)
    if plan is None:
        if tel is not None:
            tel.count("planner.plan_cache_misses")
        with _telemetry.maybe_span("planner.classify"):
            plan = _classify(program, caps_key)
        syntactic_plans[caps_key] = plan
        if tel is not None:
            tel.event(
                "planner.tier_decision",
                stage="syntactic",
                tier=plan.tier,
                tier_name=plan.tier_name,
            )
    elif tel is not None:
        tel.count("planner.plan_cache_hits")
    enabled = (
        SEMANTIC_ROUTING_DEFAULT if policy.semantic is None else policy.semantic
    )
    if not enabled or plan.tier != TIER_GROUND_SAT:
        return plan
    from .semantic import analyse_rewritability

    resolved = (
        policy.semantic_budget
        if policy.semantic_budget is not None
        else DEFAULT_BUDGET
    )
    per_budget = getattr(program, _SEMANTIC_PLANS_ATTR, None)
    if per_budget is None:
        per_budget = {}
        setattr(program, _SEMANTIC_PLANS_ATTR, per_budget)
    semantic_plan = per_budget.get(resolved)
    if semantic_plan is None:
        if tel is not None:
            tel.count("planner.semantic_cache_misses")
        semantic_plan = analyse_rewritability(program, resolved)
        if not (semantic_plan.semantic and semantic_plan.semantic.transient):
            per_budget[resolved] = semantic_plan
        if tel is not None:
            report = semantic_plan.semantic
            tel.event(
                "planner.tier_decision",
                stage="semantic",
                tier=semantic_plan.tier,
                tier_name=semantic_plan.tier_name,
                rewriting=report.rewriting if report is not None else None,
            )
    elif tel is not None:
        tel.count("planner.semantic_cache_hits")
    return semantic_plan


def _classify(
    program: DisjunctiveDatalogProgram,
    caps: tuple[int, int] | None = None,
) -> QueryPlan:
    max_disjuncts, max_atoms = (
        caps if caps is not None else effective_unfold_caps(program)
    )
    shape = analyse_program(program)
    if shape.defines_adom:
        return QueryPlan(
            TIER_GROUND_SAT,
            "program derives the built-in adom relation; only the ground "
            "engine implements that faithfully",
            program,
            shape,
        )
    if not shape.disjunction_free:
        return QueryPlan(
            TIER_GROUND_SAT,
            f"{shape.disjunctive_rule_count} disjunctive rule(s): certain "
            "answers need the ground-once + incremental CDCL engine",
            program,
            shape,
        )
    if shape.recursive:
        shown = ", ".join(shape.recursive_relations[:4])
        return QueryPlan(
            TIER_FIXPOINT,
            "disjunction-free but recursive through "
            f"{shown}: semi-naive least fixpoint, no SAT",
            program,
            shape,
        )
    unfolding = unfold_to_ucq(program, max_disjuncts, max_atoms)
    if unfolding is None:
        return QueryPlan(
            TIER_FIXPOINT,
            "disjunction-free and nonrecursive, but the UCQ unfolding "
            f"exceeds the cost-model caps ({max_disjuncts} disjuncts x "
            f"{max_atoms} atoms): semi-naive least fixpoint, no SAT",
            program,
            shape,
        )
    return QueryPlan(
        TIER_REWRITE,
        "nonrecursive and disjunction-free: goal unfolds into a UCQ with "
        f"{len(unfolding.goal_disjuncts)} disjunct(s) "
        f"(+{len(unfolding.constraint_disjuncts)} constraint disjunct(s)); "
        "evaluated by the join planner over the instance indexes — no "
        "grounding, no SAT",
        program,
        shape,
        unfolding,
    )


def plan_for_tier(
    program: DisjunctiveDatalogProgram,
    tier: int,
    caps: UnfoldCaps | None = None,
) -> QueryPlan:
    """Force a specific tier (for cross-validation and benchmarks).

    Raises ``ValueError`` when the tier is not sound for the program:
    tier 2 is always legal, tier 1 needs a disjunction-free program, and
    tier 0 additionally needs the UCQ unfolding to exist (under ``caps``,
    by default the cost model's).  Forcing is a *syntactic* notion: it
    bypasses (and thereby overrides) the semantic stage entirely, so
    ``plan_for_tier(p, TIER_GROUND_SAT)`` pins a semantically rewritable
    program to the ground+CDCL engine.
    """
    if tier not in TIER_NAMES:
        raise ValueError(f"unknown tier {tier!r}; expected one of {sorted(TIER_NAMES)}")
    natural = plan_program(program, PlanPolicy(semantic=False, unfold_caps=caps))
    if tier == natural.tier:
        return natural
    shape = natural.shape
    if tier == TIER_GROUND_SAT:
        return QueryPlan(
            TIER_GROUND_SAT, "forced to the ground+CDCL tier", program, shape
        )
    if shape.defines_adom or not shape.disjunction_free:
        raise ValueError(
            f"tier {tier} is unsound for this program: {natural.rationale}"
        )
    if tier == TIER_FIXPOINT:
        return QueryPlan(
            TIER_FIXPOINT, "forced to the fixpoint tier", program, shape
        )
    if shape.recursive:
        raise ValueError(
            "tier 0 is unsound for this program: recursive through "
            + ", ".join(shape.recursive_relations)
        )
    unfolding = natural.unfolding
    if unfolding is None:
        unfolding = unfold_to_ucq(program, *effective_unfold_caps(program, caps))
    if unfolding is None:
        raise ValueError(
            "tier 0 is unavailable: the UCQ unfolding exceeds its caps"
        )
    return QueryPlan(
        TIER_REWRITE, "forced to the UCQ-rewrite tier", program, shape, unfolding
    )


def plan_workload(
    programs: Mapping[str, DisjunctiveDatalogProgram],
    policy: PlanPolicy | None = None,
    *,
    semantic=_UNSET,
    budget=_UNSET,
) -> dict[str, QueryPlan]:
    """Plan every compiled query of a workload (cached per program)."""
    policy = resolve_policy(
        policy, {"semantic": semantic, "budget": budget}, where="plan_workload"
    )
    return {
        name: plan_program(program, policy)
        for name, program in programs.items()
    }


# ---------------------------------------------------------------------------
# Program identity interning and the LRU plan/artifact cache
# ---------------------------------------------------------------------------

# Plans (and the other per-program artifacts below) live as attributes on
# the program object, so two *structurally identical* programs compiled by
# different tenants would each plan, ground, and compile from scratch.
# ``PlanCache`` fixes that by interning programs under a canonical
# structural key: the first program with a given shape becomes the
# representative every later tenant is handed, so all attribute caches —
# and the warm serving state keyed on the program object — are shared.
_IDENTITY_KEY_ATTR = "_planner_identity_key"

#: Per-program attribute caches cleared when ``PlanCache`` evicts a
#: representative (each is rebuilt on demand by its owning layer).
PLAN_ARTIFACT_ATTRS = (
    _SYNTACTIC_PLANS_ATTR,  # syntactic QueryPlans, keyed by unfold caps
    _SEMANTIC_PLANS_ATTR,  # semantic QueryPlans, keyed by budget
    "_ground_plan_cache",  # engine/grounder.py per-rule ground plans
    "_columnar_compiled",  # datalog/plain.py compiled columnar rules
    "_analysis_report",  # analysis/checks.py static diagnostics
)


def _canonical_rule(rule) -> tuple:
    """One rule up to variable renaming: vars numbered by first occurrence."""
    numbering: dict = {}

    def canon_term(term):
        if isinstance(term, Variable):
            index = numbering.setdefault(term, len(numbering))
            return ("v", index)
        return ("c", term)

    def canon_atoms(atoms) -> tuple:
        return tuple(
            (atom.relation.name, atom.relation.arity)
            + tuple(canon_term(term) for term in atom.arguments)
            for atom in atoms
        )

    body = canon_atoms(rule.body)
    head = canon_atoms(rule.head)
    return (body, head)


def program_identity_key(program: DisjunctiveDatalogProgram) -> tuple:
    """A hashable structural identity for a compiled program.

    Two programs get equal keys iff they have the same goal relation and
    the same *set* of rules up to per-rule variable renaming — i.e. they
    are interchangeable for planning and evaluation.  Constants are kept
    as the constant objects themselves (compared by ``__eq__``), so
    distinct constants that merely share a ``repr`` never collide.  The
    key is cached on the program object.
    """
    cached = getattr(program, _IDENTITY_KEY_ATTR, None)
    if cached is not None:
        return cached
    rules = sorted((_canonical_rule(rule) for rule in program.rules), key=repr)
    key = (
        "obda-program/v1",
        program.goal_relation.name,
        program.goal_relation.arity,
        tuple(rules),
    )
    try:
        setattr(program, _IDENTITY_KEY_ATTR, key)
    except AttributeError:  # slotted/frozen program stand-ins in tests
        pass
    return key


def clear_plan_artifacts(program: DisjunctiveDatalogProgram) -> tuple[str, ...]:
    """Drop every attribute-cached artifact from a program object.

    The eviction hook of :class:`PlanCache`; safe to call on any program
    (missing attributes are skipped).  Returns the names cleared, which
    makes eviction observable in tests.
    """
    cleared = []
    for attr in PLAN_ARTIFACT_ATTRS:
        if hasattr(program, attr):
            try:
                delattr(program, attr)
            except AttributeError:
                continue
            cleared.append(attr)
    return tuple(cleared)


class PlanCache:
    """LRU-interning cache of compiled programs and their plan artifacts.

    ``intern(program)`` returns the cached *representative* for the
    program's structural identity (inserting it on first sight).  Callers
    that plan/serve the representative instead of their own copy share
    every per-program artifact — plans, ground plans, columnar compiles,
    warm session state keyed on the object — across tenants.  When the
    cache exceeds ``capacity`` the least-recently-interned representative
    is evicted and its artifacts are cleared via
    :func:`clear_plan_artifacts`; re-interning later re-plans from scratch
    (same answers, cold caches).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"PlanCache capacity must be >= 1, got {capacity}")
        from collections import OrderedDict

        self.capacity = capacity
        self._programs: OrderedDict[tuple, DisjunctiveDatalogProgram] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._programs)

    def __contains__(self, program: DisjunctiveDatalogProgram) -> bool:
        return program_identity_key(program) in self._programs

    def intern(
        self, program: DisjunctiveDatalogProgram
    ) -> DisjunctiveDatalogProgram:
        """The representative program for ``program``'s structural identity."""
        key = program_identity_key(program)
        tel = _telemetry.ACTIVE
        representative = self._programs.get(key)
        if representative is not None:
            self._programs.move_to_end(key)
            self.hits += 1
            if tel is not None:
                tel.count("planner.program_cache_hits")
            return representative
        self.misses += 1
        self._programs[key] = program
        if tel is not None:
            tel.count("planner.program_cache_misses")
        while len(self._programs) > self.capacity:
            _evicted_key, evicted = self._programs.popitem(last=False)
            self.evictions += 1
            clear_plan_artifacts(evicted)
            if tel is not None:
                tel.count("planner.program_cache_evictions")
        return program

    def describe(self) -> dict:
        return {
            "capacity": self.capacity,
            "size": len(self._programs),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


# ---------------------------------------------------------------------------
# Cost model over instance index statistics
# ---------------------------------------------------------------------------


def _chain_cost(atoms, instance: Instance, bound=frozenset()) -> tuple[float, float]:
    """Greedy-join cost of a CQ body: (total intermediate rows, result rows).

    Follows the same greedy selectivity order the executor uses; per-step
    estimates come from the instance's relation cardinalities and position
    index bucket sizes.
    """
    total = 0.0
    acc = 1.0
    bound_now = set(bound)
    for atom in order_atoms(atoms, instance, bound=bound_now):
        acc *= max(_estimated_rows(atom, bound_now, instance), 0.0)
        total += acc
        bound_now.update(atom.variables)
    return total, acc


def estimate_cost(plan: QueryPlan, instance: Instance) -> CostEstimate:
    """Cost figures for executing the plan on this instance."""
    program = plan.execution_program
    domain_size = len(instance.active_domain)
    candidates = domain_size ** program.arity
    join_cost = 0.0
    if plan.unfolding is not None:
        for disjunct in (
            plan.unfolding.goal_disjuncts + plan.unfolding.constraint_disjuncts
        ):
            steps, results = _chain_cost(disjunct.atoms, instance)
            atom_vars = {v for atom in disjunct.atoms for v in atom.variables}
            free_answers = {
                t
                for t in disjunct.answer_terms
                if isinstance(t, Variable) and t not in atom_vars
            }
            join_cost += steps + results * max(
                float(domain_size) ** len(free_answers), 1.0
            )
    idb_names = frozenset(
        {sym.name for sym in program.idb_relations}
    ) - {ADOM}
    ground_clauses = 0.0
    for rule in program.rules:
        edb_atoms, _adom_atoms, idb_atoms = _split_body(rule, idb_names, ADOM)
        steps, results = _chain_cost(edb_atoms, instance)
        bound = {v for atom in edb_atoms for v in atom.variables}
        free = sorted(
            {v for v in rule.variables if v not in bound}, key=str
        )
        literals = [(a, False) for a in idb_atoms] + [(a, True) for a in rule.head]
        blocks, _bound_literals = _free_variable_blocks(free, literals)
        multiplier = sum(
            float(domain_size) ** len(variables) for variables, _ in blocks
        )
        ground_clauses += results * max(multiplier, 1.0)
    fixpoint_bound = float(
        sum(
            float(domain_size) ** sym.arity
            for sym in program.idb_relations
            if sym.name != ADOM
        )
    )
    return CostEstimate(
        tier=plan.tier,
        domain_size=domain_size,
        candidates=candidates,
        join_cost=join_cost,
        ground_clauses=ground_clauses,
        fixpoint_bound=fixpoint_bound,
    )


def auto_workers(score: float, threshold: float = AUTO_PARALLEL_THRESHOLD) -> int | None:
    """Worker count for ``parallel="auto"``: serial below the threshold."""
    if score < threshold:
        return None
    return resolve_workers(None)
