"""The tiered query planner: route every OMQ to its cheapest engine.

The paper classifies ontology-mediated queries by rewritability —
FO-rewritable, datalog-rewritable, or genuinely disjunctive (coNP via
MDDlog/CSP; Section 5, and Feier–Kuusisto–Lutz for the MDDlog side).  This
package exploits that classification at runtime: every compiled
disjunctive datalog program is inspected once and dispatched to the
cheapest sound evaluation engine —

==== ==================== ====================================================
tier name                 engine
==== ==================== ====================================================
0    ``ucq-rewrite``      goal unfolded to a UCQ, evaluated by the join
                          planner over the instance indexes (no grounding,
                          no SAT, stateless under streaming updates)
1    ``datalog-fixpoint`` semi-naive least fixpoint, DRed-maintained in
                          sessions; constraints checked on the minimal model
2    ``ground+cdcl``      ground once + incremental CDCL (serial, parallel
                          worker pools, or sharded sessions)
==== ==================== ====================================================

Syntactic tier-2 programs additionally pass through the **semantic stage**
(:mod:`repro.planner.semantic`): the Section 5.3 decision procedures run
constructively — finite duality yields an obstruction-set UCQ served by
tier 0, bounded width yields a canonical datalog program served by tier 1 —
under a :class:`SemanticBudget` so blowups degrade gracefully to tier 2.

:func:`plan_program` caches one explainable :class:`QueryPlan` per compiled
program object; :func:`estimate_cost` prices a plan against an instance's
index statistics; :func:`execute_plan` runs it.  ``datalog.evaluation``,
the serving sessions and the OMQ layer all route through here — see the
planner section of ``ARCHITECTURE.md`` and ``docs/planner.md``.
"""

from .adaptive import (
    AdaptiveController,
    TierCostModel,
    TierRates,
    candidate_plans,
    static_rates,
)
from .analysis import (
    MAX_DISJUNCT_ATOMS,
    MAX_UNFOLDED_DISJUNCTS,
    ProgramShape,
    UcqUnfolding,
    UnfoldedDisjunct,
    analyse_program,
    effective_unfold_caps,
    estimate_unfolding,
    unfold_to_ucq,
)
from .execute import (
    PlannedMddlogEngine,
    execute_plan,
    fixpoint_certain_answers,
    ucq_candidate_certain,
    ucq_certain_answers,
    unfolding_consistent,
    vacuous_answers,
    vacuous_decisions,
)
from .plan import (
    TIER_FIXPOINT,
    TIER_GROUND_SAT,
    TIER_NAMES,
    TIER_REWRITE,
    CostEstimate,
    PlanCache,
    QueryPlan,
    auto_workers,
    clear_plan_artifacts,
    estimate_cost,
    plan_for_tier,
    plan_program,
    plan_workload,
    program_identity_key,
)
from .policy import (
    DEFAULT_ADAPTIVE,
    AdaptivePolicy,
    PlanPolicy,
    UnfoldCaps,
    resolve_policy,
)
from .semantic import (
    SemanticBudget,
    SemanticReport,
    analyse_rewritability,
    cross_validate,
)

__all__ = [
    "DEFAULT_ADAPTIVE",
    "MAX_DISJUNCT_ATOMS",
    "MAX_UNFOLDED_DISJUNCTS",
    "AdaptiveController",
    "AdaptivePolicy",
    "CostEstimate",
    "PlanCache",
    "PlanPolicy",
    "PlannedMddlogEngine",
    "ProgramShape",
    "QueryPlan",
    "SemanticBudget",
    "SemanticReport",
    "TIER_FIXPOINT",
    "TIER_GROUND_SAT",
    "TIER_NAMES",
    "TIER_REWRITE",
    "TierCostModel",
    "TierRates",
    "UcqUnfolding",
    "UnfoldCaps",
    "UnfoldedDisjunct",
    "analyse_program",
    "analyse_rewritability",
    "auto_workers",
    "candidate_plans",
    "clear_plan_artifacts",
    "cross_validate",
    "effective_unfold_caps",
    "estimate_cost",
    "estimate_unfolding",
    "execute_plan",
    "fixpoint_certain_answers",
    "plan_for_tier",
    "plan_program",
    "plan_workload",
    "program_identity_key",
    "resolve_policy",
    "static_rates",
    "ucq_candidate_certain",
    "ucq_certain_answers",
    "unfold_to_ucq",
    "unfolding_consistent",
    "vacuous_answers",
    "vacuous_decisions",
]
