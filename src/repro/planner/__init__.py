"""The tiered query planner: route every OMQ to its cheapest engine.

The paper classifies ontology-mediated queries by rewritability —
FO-rewritable, datalog-rewritable, or genuinely disjunctive (coNP via
MDDlog/CSP; Section 5, and Feier–Kuusisto–Lutz for the MDDlog side).  This
package exploits that classification at runtime: every compiled
disjunctive datalog program is inspected once and dispatched to the
cheapest sound evaluation engine —

==== ==================== ====================================================
tier name                 engine
==== ==================== ====================================================
0    ``ucq-rewrite``      goal unfolded to a UCQ, evaluated by the join
                          planner over the instance indexes (no grounding,
                          no SAT, stateless under streaming updates)
1    ``datalog-fixpoint`` semi-naive least fixpoint, DRed-maintained in
                          sessions; constraints checked on the minimal model
2    ``ground+cdcl``      ground once + incremental CDCL (serial, parallel
                          worker pools, or sharded sessions)
==== ==================== ====================================================

Syntactic tier-2 programs additionally pass through the **semantic stage**
(:mod:`repro.planner.semantic`): the Section 5.3 decision procedures run
constructively — finite duality yields an obstruction-set UCQ served by
tier 0, bounded width yields a canonical datalog program served by tier 1 —
under a :class:`SemanticBudget` so blowups degrade gracefully to tier 2.

:func:`plan_program` caches one explainable :class:`QueryPlan` per compiled
program object; :func:`estimate_cost` prices a plan against an instance's
index statistics; :func:`execute_plan` runs it.  ``datalog.evaluation``,
the serving sessions and the OMQ layer all route through here — see the
planner section of ``ARCHITECTURE.md`` and ``docs/planner.md``.
"""

from .analysis import (
    MAX_DISJUNCT_ATOMS,
    MAX_UNFOLDED_DISJUNCTS,
    ProgramShape,
    UcqUnfolding,
    UnfoldedDisjunct,
    analyse_program,
    unfold_to_ucq,
)
from .execute import (
    PlannedMddlogEngine,
    execute_plan,
    fixpoint_certain_answers,
    ucq_candidate_certain,
    ucq_certain_answers,
    unfolding_consistent,
    vacuous_answers,
    vacuous_decisions,
)
from .plan import (
    TIER_FIXPOINT,
    TIER_GROUND_SAT,
    TIER_NAMES,
    TIER_REWRITE,
    CostEstimate,
    QueryPlan,
    auto_workers,
    estimate_cost,
    plan_for_tier,
    plan_program,
    plan_workload,
)
from .semantic import (
    SemanticBudget,
    SemanticReport,
    analyse_rewritability,
    cross_validate,
)

__all__ = [
    "MAX_DISJUNCT_ATOMS",
    "MAX_UNFOLDED_DISJUNCTS",
    "CostEstimate",
    "PlannedMddlogEngine",
    "ProgramShape",
    "QueryPlan",
    "SemanticBudget",
    "SemanticReport",
    "TIER_FIXPOINT",
    "TIER_GROUND_SAT",
    "TIER_NAMES",
    "TIER_REWRITE",
    "UcqUnfolding",
    "UnfoldedDisjunct",
    "analyse_program",
    "analyse_rewritability",
    "auto_workers",
    "cross_validate",
    "estimate_cost",
    "execute_plan",
    "fixpoint_certain_answers",
    "plan_for_tier",
    "plan_program",
    "plan_workload",
    "ucq_candidate_certain",
    "ucq_certain_answers",
    "unfold_to_ucq",
    "unfolding_consistent",
    "vacuous_answers",
    "vacuous_decisions",
]
