"""Canonical datalog programs for CSP templates.

Feder and Vardi's canonical (l,k)-datalog programs are the datalog rewritings
behind Theorem 5.10's datalog-rewritability results.  This module constructs
the canonical *unary* program (the datalog form of the arc-consistency
procedure), which is a sound rewriting of ``coCSP(B)`` for every template and
a complete one exactly for templates with tree duality (width 1), together
with a direct implementation of the (l,k)-consistency procedure used as a
semantic check for bounded width.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Sequence

from ..core.cq import Atom, Variable
from ..core.instance import Fact, Instance
from ..core.schema import RelationSymbol
from ..datalog.ddlog import ADOM, Rule
from ..datalog.plain import DatalogProgram

Element = Hashable


def _subset_symbol(subset: frozenset, prefix: str = "X") -> RelationSymbol:
    label = "_".join(sorted(str(b) for b in subset)) or "empty"
    return RelationSymbol(f"{prefix}_{label}", 1)


def canonical_arc_consistency_program(template: Instance) -> DatalogProgram:
    """The canonical unary datalog program for ``coCSP(B)``.

    IDB relations ``X_S`` (one per subset ``S`` of the template's domain) say
    "the possible images of this data element lie within ``S``"; the rules
    propagate possible-image sets through the template's relations, intersect
    them, and fire ``goal`` when the empty set is derived.  The program is
    sound for ``coCSP(B)`` and complete iff ``B`` has tree duality.
    """
    domain = sorted(template.active_domain, key=repr)
    full = frozenset(domain)
    subsets = [
        frozenset(c)
        for size in range(len(domain) + 1)
        for c in itertools.combinations(domain, size)
    ]
    x, y = Variable("x"), Variable("y")
    rules: list[Rule] = []
    adom = RelationSymbol(ADOM, 1)
    goal = RelationSymbol("goal", 0)

    # Initialisation: every data element may map anywhere.
    rules.append(Rule((Atom(_subset_symbol(full), (x,)),), (Atom(adom, (x,)),)))

    # Unary EDB relations restrict the image set directly.
    for symbol in template.schema.concept_names:
        allowed = frozenset(t[0] for t in template.tuples(symbol))
        rules.append(
            Rule((Atom(_subset_symbol(allowed), (x,)),), (Atom(symbol, (x,)),))
        )

    # Binary EDB relations propagate image sets in both directions.
    for symbol in template.schema.role_names:
        pairs = template.tuples(symbol)
        for subset in subsets:
            forward = frozenset(b for (a, b) in pairs if a in subset)
            backward = frozenset(a for (a, b) in pairs if b in subset)
            rules.append(
                Rule(
                    (Atom(_subset_symbol(forward), (y,)),),
                    (Atom(symbol, (x, y)), Atom(_subset_symbol(subset), (x,))),
                )
            )
            rules.append(
                Rule(
                    (Atom(_subset_symbol(backward), (x,)),),
                    (Atom(symbol, (x, y)), Atom(_subset_symbol(subset), (y,))),
                )
            )
            # Reflexive data edges R(x, x) constrain x to template elements
            # carrying a loop; without these rules the program would miss
            # refutations such as a self-loop against a loop-free template.
            loops = frozenset(a for (a, b) in pairs if a == b and a in subset)
            rules.append(
                Rule(
                    (Atom(_subset_symbol(loops), (x,)),),
                    (Atom(symbol, (x, x)), Atom(_subset_symbol(subset), (x,))),
                )
            )

    # Intersection of derived image sets.
    for first, second in itertools.combinations(subsets, 2):
        meet = first & second
        if meet != first and meet != second:
            rules.append(
                Rule(
                    (Atom(_subset_symbol(meet), (x,)),),
                    (
                        Atom(_subset_symbol(first), (x,)),
                        Atom(_subset_symbol(second), (x,)),
                    ),
                )
            )

    # Empty image set: no homomorphism exists.
    rules.append(
        Rule((Atom(goal, ()),), (Atom(_subset_symbol(frozenset()), (x,)),))
    )
    return DatalogProgram(rules, goal_relation=goal)


def power_structure(template: Instance) -> Instance:
    """The power structure ``𝒫(B)`` over the nonempty subsets of ``B``'s domain.

    ``(S1, ..., Sn)`` is an ``R``-tuple of ``𝒫(B)`` iff every element of
    every ``Si`` extends to an ``R``-tuple of ``B`` through the other
    subsets — the structure whose homomorphisms into ``B`` characterise
    tree duality (Feder–Vardi).
    """
    domain = sorted(template.active_domain, key=repr)
    subsets = [
        frozenset(combination)
        for size in range(1, len(domain) + 1)
        for combination in itertools.combinations(domain, size)
    ]
    facts = []
    for symbol in template.schema:
        rows = template.tuples(symbol)
        for choice in itertools.product(subsets, repeat=symbol.arity):
            supported = all(
                any(
                    row[position] == element
                    and all(
                        row[other] in choice[other]
                        for other in range(symbol.arity)
                    )
                    for row in rows
                )
                for position, subset in enumerate(choice)
                for element in subset
            )
            if supported:
                facts.append(Fact(symbol, choice))
    return Instance(facts, schema=template.schema)


def has_tree_duality(template: Instance, assume_core: bool = False) -> bool:
    """Does ``B`` have tree duality — i.e. is the canonical *unary* program a
    complete rewriting of ``coCSP(B)``?

    Feder and Vardi characterise tree duality (width 1) by a homomorphism
    ``𝒫(B) → B`` from the power structure; the test runs on the core, which
    is homomorphically equivalent (pass ``assume_core=True`` to skip the
    retract search when the caller already cored the template).  This is
    the exact gate the planner's semantic stage applies before serving
    :func:`canonical_arc_consistency_program` (K2 is the classic
    counterexample: bounded width, but its obstructions — the odd cycles —
    are not trees, so arc consistency misses them).
    """
    from ..core.homomorphism import core as core_of
    from ..core.homomorphism import has_homomorphism

    kernel = template if assume_core else core_of(template)
    if not kernel.active_domain:
        return True
    return has_homomorphism(power_structure(kernel), kernel)


def arc_consistency_refutes(template: Instance, data: Instance) -> bool:
    """Direct arc-consistency procedure: True if AC proves ``data ↛ template``.

    The operational twin of :func:`canonical_arc_consistency_program` —
    the width-1 case of Theorem 5.10's consistency procedures.  Sound for
    every template; complete exactly under tree duality
    (:func:`has_tree_duality`).
    """
    domain = sorted(template.active_domain, key=repr)
    possible: dict[Element, set[Element]] = {
        element: set(domain) for element in data.active_domain
    }
    changed = True
    while changed:
        changed = False
        for fact in data:
            tuples = template.tuples(fact.relation)
            args = fact.arguments
            supported = [set() for _ in args]
            for image in tuples:
                consistent = all(
                    image[i] in possible[args[i]] for i in range(len(args))
                ) and all(
                    image[i] == image[j]
                    for i in range(len(args))
                    for j in range(i + 1, len(args))
                    if args[i] == args[j]
                )
                if consistent:
                    for i in range(len(args)):
                        supported[i].add(image[i])
            for i, element in enumerate(args):
                new = possible[element] & supported[i]
                if new != possible[element]:
                    possible[element] = new
                    changed = True
    return any(not values for values in possible.values())


def k_consistency_refutes(template: Instance, data: Instance, k: int = 2) -> bool:
    """(k, k+1)-consistency: True if the consistency procedure proves
    ``data ↛ template``.  This is the semantic counterpart of the canonical
    (k, k+1)-datalog program; ``coCSP(B)`` is datalog-rewritable iff some such
    procedure is complete for it (bounded width)."""
    elements = sorted(data.active_domain, key=repr)
    domain = sorted(template.active_domain, key=repr)
    if not elements:
        return False
    k = min(k, len(elements))

    scopes = [tuple(c) for c in itertools.combinations(elements, k)]
    partial: dict[tuple, set[tuple]] = {}
    for scope in scopes:
        allowed = set()
        for images in itertools.product(domain, repeat=k):
            mapping = dict(zip(scope, images))
            if _partial_homomorphism(data, template, mapping):
                allowed.add(images)
        partial[scope] = allowed
        if not allowed:
            return True

    changed = True
    while changed:
        changed = False
        for scope in scopes:
            scope_set = set(scope)
            for extra in elements:
                if extra in scope_set:
                    continue
                survivors = set()
                for images in partial[scope]:
                    mapping = dict(zip(scope, images))
                    extendable = False
                    for value in domain:
                        extended = dict(mapping)
                        extended[extra] = value
                        # the extension must also be consistent with every
                        # k-subscope it completes
                        if _partial_homomorphism(
                            data, template, extended
                        ) and _subscopes_allow(partial, extended, k):
                            extendable = True
                            break
                    if extendable:
                        survivors.add(images)
                if survivors != partial[scope]:
                    partial[scope] = survivors
                    changed = True
                    if not survivors:
                        return True
    return False


def _partial_homomorphism(data: Instance, template: Instance, mapping: dict) -> bool:
    for fact in data:
        if all(a in mapping for a in fact.arguments):
            image = tuple(mapping[a] for a in fact.arguments)
            if image not in template.tuples(fact.relation):
                return False
    return True


def _subscopes_allow(partial: dict, mapping: dict, k: int) -> bool:
    elements = sorted(mapping, key=repr)
    for scope in itertools.combinations(elements, k):
        if scope in partial:
            images = tuple(mapping[e] for e in scope)
            if images not in partial[scope]:
                return False
    return True


def canonical_program_is_complete(
    template: Instance,
    data_instances: Sequence[Instance],
    k: int = 2,
) -> bool:
    """Empirical completeness check of the (k, k+1)-consistency procedure on a
    family of data instances: consistency refutes exactly the non-homomorphic
    instances."""
    from ..core.homomorphism import has_homomorphism

    for data in data_instances:
        refuted = k_consistency_refutes(template, data, k)
        if refuted == has_homomorphism(data, template):
            return False
    return True
