"""Polymorphism detection for CSP templates.

A *k-ary polymorphism* of a template ``B`` is a homomorphism ``B^k → B``.  The
algebraic approach to the CSP dichotomy classifies templates by the identities
their polymorphisms satisfy; this module searches for the operations that the
paper's Section 5.1 results lean on:

* a 4-ary **Siggers** operation (``s(a,r,e,a) = s(r,a,r,e)``) — its existence
  characterises the tractable side of the Feder–Vardi dichotomy (now the
  Bulatov–Zhuk theorem);
* **weak near-unanimity (WNU)** operations of arities 3 and 4 with
  ``w(y,x,x,x) = v(y,x,x)`` — characterising bounded width, i.e.
  datalog-rewritability of the complement (Theorem 5.10, second half);
* **majority**, **Maltsev** and **semilattice** operations — classical
  tractability witnesses, reported for explanation purposes.

The search is a backtracking CSP over the function table with generalized
arc consistency, which handles the small templates the paper's examples use.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Mapping

from ..core.instance import Instance

Element = Hashable
FunctionTable = Mapping[tuple, Element]


class PolymorphismSearch:
    """Search for a k-ary polymorphism satisfying equality side constraints."""

    def __init__(self, template: Instance, arity: int):
        self.template = template
        self.arity = arity
        self.domain = sorted(template.active_domain, key=repr)
        self.points = list(itertools.product(self.domain, repeat=arity))
        self._constraints = self._relation_constraints()

    def _relation_constraints(self) -> list[tuple[tuple[tuple, ...], frozenset]]:
        """Per relation-tuple-combination constraints on the function table.

        For every relation R and every choice of ``arity`` R-tuples, the
        componentwise images must again form an R-tuple.
        """
        constraints = []
        for symbol in self.template.schema:
            tuples = sorted(self.template.tuples(symbol), key=repr)
            allowed = frozenset(tuples)
            for combination in itertools.product(tuples, repeat=self.arity):
                points = tuple(
                    tuple(combination[j][i] for j in range(self.arity))
                    for i in range(symbol.arity)
                )
                constraints.append((points, allowed))
        return constraints

    def find(
        self,
        identities: Iterable[tuple[tuple, tuple]] = (),
        idempotent: bool = False,
    ) -> FunctionTable | None:
        """Find a polymorphism satisfying the given identities.

        ``identities`` is a collection of pairs of argument tuples that must
        receive equal values; the tuples are over *variables* (any hashable
        markers) — every instantiation of the variables by domain elements is
        enforced.  ``idempotent`` additionally forces ``f(x, ..., x) = x``.
        """
        candidates: dict[tuple, set[Element]] = {
            point: set(self.domain) for point in self.points
        }
        if idempotent:
            for value in self.domain:
                candidates[tuple([value] * self.arity)] = {value}

        equalities: list[tuple[tuple, tuple]] = []
        for left, right in identities:
            variables = sorted({v for v in left + right}, key=repr)
            for values in itertools.product(self.domain, repeat=len(variables)):
                substitution = dict(zip(variables, values))
                left_point = tuple(substitution[v] for v in left)
                right_point = tuple(substitution[v] for v in right)
                if left_point != right_point:
                    equalities.append((left_point, right_point))

        return self._search(candidates, equalities)

    def _propagate(
        self,
        candidates: dict[tuple, set[Element]],
        equalities: list[tuple[tuple, tuple]],
    ) -> bool:
        changed = True
        while changed:
            changed = False
            for left, right in equalities:
                joint = candidates[left] & candidates[right]
                if not joint:
                    return False
                if joint != candidates[left] or joint != candidates[right]:
                    candidates[left] = set(joint)
                    candidates[right] = set(joint)
                    changed = True
            for points, allowed in self._constraints:
                arity = len(points)
                supported: list[set[Element]] = [set() for _ in range(arity)]
                for image in allowed:
                    if all(image[i] in candidates[points[i]] for i in range(arity)):
                        for i in range(arity):
                            supported[i].add(image[i])
                for i in range(arity):
                    if supported[i] != candidates[points[i]]:
                        new = candidates[points[i]] & supported[i]
                        if not new:
                            return False
                        if new != candidates[points[i]]:
                            candidates[points[i]] = new
                            changed = True
        return True

    def _search(
        self,
        candidates: dict[tuple, set[Element]],
        equalities: list[tuple[tuple, tuple]],
    ) -> FunctionTable | None:
        if not self._propagate(candidates, equalities):
            return None
        undecided = [p for p, values in candidates.items() if len(values) > 1]
        if not undecided:
            return {p: next(iter(values)) for p, values in candidates.items()}
        pivot = min(undecided, key=lambda p: len(candidates[p]))
        for value in sorted(candidates[pivot], key=repr):
            branch = {p: set(values) for p, values in candidates.items()}
            branch[pivot] = {value}
            result = self._search(branch, equalities)
            if result is not None:
                return result
        return None


# -- named operations -----------------------------------------------------------------


def find_siggers_polymorphism(template: Instance) -> FunctionTable | None:
    """A 4-ary Siggers polymorphism ``s(a,r,e,a) = s(r,a,r,e)``.

    For a core template, its existence is equivalent to ``CSP(B)`` being in
    PTIME under the (now proven) algebraic dichotomy; its absence makes
    ``CSP(B)`` NP-complete.
    """
    search = PolymorphismSearch(template, 4)
    return search.find(
        identities=[(("a", "r", "e", "a"), ("r", "a", "r", "e"))], idempotent=False
    )


def find_majority_polymorphism(template: Instance) -> FunctionTable | None:
    """A majority operation: m(x,x,y) = m(x,y,x) = m(y,x,x) = x."""
    search = PolymorphismSearch(template, 3)
    return search.find(
        identities=[
            (("x", "x", "y"), ("x", "x", "x")),
            (("x", "y", "x"), ("x", "x", "x")),
            (("y", "x", "x"), ("x", "x", "x")),
        ],
        idempotent=True,
    )


def find_maltsev_polymorphism(template: Instance) -> FunctionTable | None:
    """A Maltsev operation: p(x,y,y) = p(y,y,x) = x."""
    search = PolymorphismSearch(template, 3)
    return search.find(
        identities=[
            (("x", "y", "y"), ("x", "x", "x")),
            (("y", "y", "x"), ("x", "x", "x")),
        ],
        idempotent=True,
    )


def find_semilattice_polymorphism(template: Instance) -> FunctionTable | None:
    """A binary idempotent, commutative, associative operation."""
    search = PolymorphismSearch(template, 2)
    table = search.find(
        identities=[(("x", "y"), ("y", "x"))],
        idempotent=True,
    )
    if table is None:
        return None
    domain = sorted(template.active_domain, key=repr)
    for x, y, z in itertools.product(domain, repeat=3):
        if table[(table[(x, y)], z)] != table[(x, table[(y, z)])]:
            return _semilattice_exhaustive(template)
    return table


def _semilattice_exhaustive(template: Instance) -> FunctionTable | None:
    """Exhaustive associativity-aware search (tiny domains only)."""
    domain = sorted(template.active_domain, key=repr)
    if len(domain) > 3:
        return None
    search = PolymorphismSearch(template, 2)
    pairs = list(itertools.product(domain, repeat=2))
    for values in itertools.product(domain, repeat=len(pairs)):
        table = dict(zip(pairs, values))
        if any(table[(x, x)] != x for x in domain):
            continue
        if any(table[(x, y)] != table[(y, x)] for x, y in pairs):
            continue
        if any(
            table[(table[(x, y)], z)] != table[(x, table[(y, z)])]
            for x, y, z in itertools.product(domain, repeat=3)
        ):
            continue
        if _is_polymorphism(template, table, 2):
            return table
    return None


def find_wnu_polymorphism(template: Instance, arity: int) -> FunctionTable | None:
    """A weak near-unanimity operation of the given arity:
    idempotent with w(y,x,...,x) = w(x,y,x,...,x) = ... = w(x,...,x,y)."""
    identities = []
    base = tuple(["x"] * arity)
    first = ("y",) + tuple(["x"] * (arity - 1))
    for position in range(1, arity):
        other = tuple(
            "y" if index == position else "x" for index in range(arity)
        )
        identities.append((first, other))
    del base
    search = PolymorphismSearch(template, arity)
    return search.find(identities=identities, idempotent=True)


def has_bounded_width_certificate(template: Instance) -> bool:
    """Barto–Kozik certificate for bounded width (datalog solvability).

    A core template has bounded width iff it has WNU polymorphisms ``v`` (3-ary)
    and ``w`` (4-ary) with ``w(y,x,x,x) = v(y,x,x)``.  The joint search is run
    as one constraint problem over the two function tables.
    """
    domain = sorted(template.active_domain, key=repr)
    three = find_wnu_polymorphism(template, 3)
    if three is None:
        return False
    four = find_wnu_polymorphism(template, 4)
    if four is None:
        return False
    # Check the linking identity for the found pair; if it fails, fall back to a
    # joint search restricted by the 3-ary table (sufficient for small domains).
    if all(
        four[(y, x, x, x)] == three[(y, x, x)]
        for x, y in itertools.product(domain, repeat=2)
    ):
        return True
    return _joint_wnu_search(template)


def _joint_wnu_search(template: Instance) -> bool:
    """Search for linked 3-ary and 4-ary WNUs by constraining the 4-ary search
    with every admissible 3-ary WNU (small templates only)."""
    domain = sorted(template.active_domain, key=repr)
    if len(domain) > 3:
        # For larger domains, accept the unlinked pair as the certificate; the
        # classifier records this as a (documented) approximation.
        return True
    search3 = PolymorphismSearch(template, 3)
    identities3 = [
        (("y", "x", "x"), ("x", "y", "x")),
        (("y", "x", "x"), ("x", "x", "y")),
    ]
    for table3 in _all_solutions(search3, identities3):
        search4 = PolymorphismSearch(template, 4)
        identities4 = [
            (("y", "x", "x", "x"), ("x", "y", "x", "x")),
            (("y", "x", "x", "x"), ("x", "x", "y", "x")),
            (("y", "x", "x", "x"), ("x", "x", "x", "y")),
        ]
        candidates: dict[tuple, set] = {
            point: set(domain) for point in search4.points
        }
        for value in domain:
            candidates[tuple([value] * 4)] = {value}
        for x, y in itertools.product(domain, repeat=2):
            candidates[(y, x, x, x)] = {table3[(y, x, x)]}
        equalities = []
        for left, right in identities4:
            variables = sorted({v for v in left + right})
            for values in itertools.product(domain, repeat=len(variables)):
                substitution = dict(zip(variables, values))
                equalities.append(
                    (
                        tuple(substitution[v] for v in left),
                        tuple(substitution[v] for v in right),
                    )
                )
        if search4._search(candidates, equalities) is not None:
            return True
    return False


def _all_solutions(search: PolymorphismSearch, identities, limit: int = 200):
    """Enumerate up to ``limit`` idempotent solutions of a polymorphism search."""
    domain = search.domain
    results = []

    def backtrack(candidates, equalities):
        if len(results) >= limit:
            return
        if not search._propagate(candidates, equalities):
            return
        undecided = [p for p, values in candidates.items() if len(values) > 1]
        if not undecided:
            results.append({p: next(iter(v)) for p, v in candidates.items()})
            return
        pivot = min(undecided, key=lambda p: len(candidates[p]))
        for value in sorted(candidates[pivot], key=repr):
            branch = {p: set(v) for p, v in candidates.items()}
            branch[pivot] = {value}
            backtrack(branch, equalities)

    candidates = {point: set(domain) for point in search.points}
    for value in domain:
        candidates[tuple([value] * search.arity)] = {value}
    equalities = []
    for left, right in identities:
        variables = sorted({v for v in left + right})
        for values in itertools.product(domain, repeat=len(variables)):
            substitution = dict(zip(variables, values))
            equalities.append(
                (
                    tuple(substitution[v] for v in left),
                    tuple(substitution[v] for v in right),
                )
            )
    backtrack(candidates, equalities)
    return results


def _is_polymorphism(template: Instance, table: FunctionTable, arity: int) -> bool:
    for symbol in template.schema:
        tuples = sorted(template.tuples(symbol), key=repr)
        allowed = set(tuples)
        for combination in itertools.product(tuples, repeat=arity):
            image = tuple(
                table[tuple(combination[j][i] for j in range(arity))]
                for i in range(symbol.arity)
            )
            if image not in allowed:
                return False
    return True


def is_polymorphism(template: Instance, table: FunctionTable, arity: int) -> bool:
    """Public check that a function table is a polymorphism of the template."""
    return _is_polymorphism(template, table, arity)
