"""CSP templates and the coCSP query languages of Section 4.2.

Each instance ``B`` over a schema induces the constraint satisfaction problem
``CSP(B)``: decide whether a given instance maps homomorphically into ``B``.
The paper's query-language view flips this around:

* ``coCSP(B)`` — the Boolean query that is true on ``D`` iff ``D ↛ B``;
* *generalized* coCSP — a finite set of templates, true iff no template
  receives a homomorphism;
* generalized coCSP *with marked elements* — templates carry distinguished
  elements and homomorphisms must respect the marks (this is the non-Boolean
  case capturing atomic queries, Theorem 4.6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..core.homomorphism import (
    HomomorphismSearch,
    find_homomorphism,
    has_homomorphism,
    marked_homomorphism_exists,
    marks_as_fixed_map,
)
from ..core.instance import Instance, MarkedInstance
from ..core.schema import Schema

Element = Hashable


@dataclass(frozen=True)
class Template:
    """A CSP template: an instance over a schema (the instance *is* the template)."""

    instance: Instance

    @property
    def schema(self) -> Schema:
        return self.instance.schema

    def domain(self) -> frozenset:
        return self.instance.active_domain

    def admits(self, data: Instance) -> bool:
        """``data → B``: does the input belong to CSP(B)?"""
        return has_homomorphism(data, self.instance)

    def homomorphism_from(self, data: Instance):
        return find_homomorphism(data, self.instance)

    def size(self) -> int:
        return len(self.instance)


class CoCspQuery:
    """The Boolean query ``coCSP(B)``: true iff the data does not map to B."""

    def __init__(self, template: Template | Instance):
        self.template = template if isinstance(template, Template) else Template(template)

    @property
    def arity(self) -> int:
        return 0

    def evaluate(self, data: Instance) -> bool:
        return not self.template.admits(data)

    def holds_in(self, data: Instance, answer: Sequence = ()) -> bool:
        return self.evaluate(data)


class GeneralizedCoCspQuery:
    """``coCSP(F)`` for a finite set of (unmarked) templates: true iff the data
    maps into none of them."""

    def __init__(self, templates: Iterable[Template | Instance]):
        self.templates = tuple(
            t if isinstance(t, Template) else Template(t) for t in templates
        )
        if not self.templates:
            raise ValueError("need at least one template")

    @property
    def arity(self) -> int:
        return 0

    def evaluate(self, data: Instance) -> bool:
        return not any(t.admits(data) for t in self.templates)

    def holds_in(self, data: Instance, answer: Sequence = ()) -> bool:
        return self.evaluate(data)


class MarkedCoCspQuery:
    """Generalized coCSP with marked elements (the n-ary case of Section 4.2).

    ``evaluate`` returns the set of tuples ``d`` over the data's active domain
    such that ``(D, d)`` maps to none of the marked templates.
    """

    def __init__(self, templates: Iterable[MarkedInstance]):
        self.templates = tuple(templates)
        if not self.templates:
            raise ValueError("need at least one marked template")
        arities = {t.arity for t in self.templates}
        if len(arities) != 1:
            raise ValueError(f"templates disagree on arity: {arities}")
        self._arity = next(iter(arities))

    @property
    def arity(self) -> int:
        return self._arity

    def admits(self, data: Instance, marks: Sequence[Element]) -> bool:
        source = MarkedInstance(data, tuple(marks))
        return any(
            marked_homomorphism_exists(source, template) for template in self.templates
        )

    def evaluate(self, data: Instance) -> frozenset[tuple]:
        """All tuples ``d`` with ``(D, d)`` mapping to no template.

        One :class:`HomomorphismSearch` is built per template and re-solved
        with each mark tuple as the fixed map, so the per-template candidate
        pruning is shared across all ``|adom|^arity`` queries instead of
        being recomputed per tuple (the engine-sharing pattern of
        Theorem 4.6's certain-answer procedure).
        """
        domain = sorted(data.active_domain, key=repr)
        searches = [
            (HomomorphismSearch(data, template.instance), template.marks)
            for template in self.templates
        ]
        answers = set()
        for marks in itertools.product(domain, repeat=self._arity):
            admitted = False
            for search, template_marks in searches:
                fixed = marks_as_fixed_map(marks, template_marks)
                if fixed is not None and search.exists(fixed):
                    admitted = True
                    break
            if not admitted:
                answers.add(marks)
        return frozenset(answers)

    def holds_in(self, data: Instance, answer: Sequence = ()) -> bool:
        return not self.admits(data, tuple(answer))


def prune_to_incomparable(templates: Sequence[Instance]) -> list[Instance]:
    """Keep one representative per homomorphic-equivalence class and drop
    templates subsumed by another (used before Proposition 5.11 style tests)."""
    kept: list[Instance] = []
    for candidate in templates:
        if any(has_homomorphism(candidate, other) for other in kept):
            continue
        kept = [other for other in kept if not has_homomorphism(other, candidate)]
        kept.append(candidate)
    return kept


def equivalent_as_cocsp(first: Sequence[Instance], second: Sequence[Instance]) -> bool:
    """Do two template sets define the same generalized coCSP query?

    By the homomorphism characterisation used in Section 5.2, the answers of
    ``coCSP(F)`` are contained in those of ``coCSP(F')`` iff every template of
    ``F`` maps into some template of ``F'``; equality is mutual containment.
    """
    forward = all(
        any(has_homomorphism(b, b2) for b2 in second) for b in first
    )
    backward = all(
        any(has_homomorphism(b2, b) for b in first) for b2 in second
    )
    return forward and backward


def incomparable_marked(templates: Sequence[MarkedInstance]) -> list[MarkedInstance]:
    """Prune a set of marked templates to pairwise homomorphically incomparable
    ones defining the same query (the reduction used before Theorem 5.15)."""
    kept: list[MarkedInstance] = []
    for candidate in templates:
        if any(marked_homomorphism_exists(candidate, other) for other in kept):
            continue
        kept = [
            other
            for other in kept
            if not marked_homomorphism_exists(other, candidate)
        ]
        kept.append(candidate)
    return kept
