"""Tractability classification of CSP templates (the dichotomy of Section 5.1).

The paper ties the data complexity of ontology-mediated queries to the
Feder–Vardi conjecture: (ALC, UCQ) has a PTIME/coNP dichotomy iff every CSP is
either in PTIME or NP-complete.  Since the conjecture has meanwhile been
proven (Bulatov 2017, Zhuk 2017) via the algebraic criterion the paper relies
on, we can *classify* concrete templates: a core template is tractable iff it
has a Siggers polymorphism, and NP-hard otherwise.

The classifier also reports finer-grained witnesses (majority, Maltsev,
semilattice, bounded width) because these determine which rewriting exists
(Section 5.3): FO-rewritable templates are the finite-duality ones, and
datalog-rewritable templates are exactly the bounded-width ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.homomorphism import core as core_of
from ..core.instance import Instance
from .duality import is_fo_definable_csp
from .polymorphisms import (
    find_majority_polymorphism,
    find_maltsev_polymorphism,
    find_semilattice_polymorphism,
    find_siggers_polymorphism,
    has_bounded_width_certificate,
)

PTIME = "PTIME"
NP_HARD = "NP-hard"


@dataclass(frozen=True)
class TemplateClassification:
    """The result of classifying a CSP template's data complexity."""

    complexity: str
    core_size: int
    has_siggers: bool
    has_majority: bool = False
    has_maltsev: bool = False
    has_semilattice: bool = False
    bounded_width: bool = False
    fo_definable: bool = False
    witnesses: tuple[str, ...] = field(default_factory=tuple)

    def is_tractable(self) -> bool:
        return self.complexity == PTIME


def classify_template(template: Instance, check_rewritability: bool = True) -> TemplateClassification:
    """Classify ``CSP(B)`` as PTIME or NP-hard and collect algebraic witnesses.

    The classification is computed on the core of the template (CSP(B) and
    CSP(core(B)) coincide).  ``check_rewritability`` additionally runs the
    (more expensive) bounded-width and finite-duality tests.
    """
    kernel = core_of(template)
    if not kernel.active_domain:
        # The empty template: only the empty instance maps to it.
        return TemplateClassification(
            complexity=PTIME,
            core_size=0,
            has_siggers=True,
            fo_definable=True,
            bounded_width=True,
            witnesses=("empty core",),
        )
    siggers = find_siggers_polymorphism(kernel)
    witnesses: list[str] = []
    majority = find_majority_polymorphism(kernel) is not None
    maltsev = find_maltsev_polymorphism(kernel) is not None
    semilattice = find_semilattice_polymorphism(kernel) is not None
    if majority:
        witnesses.append("majority polymorphism")
    if maltsev:
        witnesses.append("Maltsev polymorphism")
    if semilattice:
        witnesses.append("semilattice polymorphism")
    bounded_width = False
    fo_definable = False
    if check_rewritability:
        bounded_width = has_bounded_width_certificate(kernel)
        fo_definable = is_fo_definable_csp(kernel)
        if bounded_width:
            witnesses.append("bounded width (datalog-rewritable complement)")
        if fo_definable:
            witnesses.append("finite duality (FO-rewritable complement)")
    if siggers is not None:
        complexity = PTIME
        witnesses.insert(0, "Siggers polymorphism")
    else:
        complexity = NP_HARD
        witnesses.insert(0, "no Siggers polymorphism (algebraic hardness)")
    return TemplateClassification(
        complexity=complexity,
        core_size=len(kernel.active_domain),
        has_siggers=siggers is not None,
        has_majority=majority,
        has_maltsev=maltsev,
        has_semilattice=semilattice,
        bounded_width=bounded_width,
        fo_definable=fo_definable,
        witnesses=tuple(witnesses),
    )


def dichotomy_holds_on(templates) -> bool:
    """Check the dichotomy statement on a concrete family of templates: each is
    classified PTIME or NP-hard (trivially true post-classification; exposed so
    benchmark tables can report the split the way the paper states it)."""
    return all(
        classify_template(t, check_rewritability=False).complexity in (PTIME, NP_HARD)
        for t in templates
    )
