"""FO- and datalog-rewritability of (generalized, marked) CSPs — Section 5.3.

Theorem 5.10 gives decision procedures for single templates; Proposition 5.11
and Theorem 5.15 lift them to generalized CSPs with marked elements by (i)
pruning the template set to homomorphically incomparable representatives and
(ii) replacing marked elements by fresh unary relation symbols
(``(B, b) ↦ (B, b)^c``).  This module implements both levels together with the
constructive side: UCQ-rewritings from obstruction sets and datalog rewritings
from the canonical programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.homomorphism import core as core_of
from ..core.instance import Instance, MarkedInstance
from ..core.structures import expansion_with_constants
from .canonical_datalog import (
    arc_consistency_refutes,
    canonical_arc_consistency_program,
    k_consistency_refutes,
)
from .duality import bounded_obstruction_set, is_fo_definable_csp, ucq_rewriting_from_obstructions
from .polymorphisms import has_bounded_width_certificate
from .template import incomparable_marked, prune_to_incomparable


@dataclass(frozen=True)
class RewritabilityReport:
    """Summary of the rewritability analysis of a coCSP query."""

    fo_rewritable: bool
    datalog_rewritable: bool
    obstructions_found: int = 0


# -- single templates ---------------------------------------------------------------


def cocsp_fo_rewritable(template: Instance) -> bool:
    """Is ``coCSP(B)`` FO-rewritable?  (Theorem 5.10, first half.)"""
    return is_fo_definable_csp(template)


def cocsp_datalog_rewritable(template: Instance) -> bool:
    """Is ``coCSP(B)`` datalog-rewritable?  (Theorem 5.10, second half:
    bounded width, tested via the Barto–Kozik WNU certificate on the core.)"""
    kernel = core_of(template)
    if not kernel.active_domain:
        return True
    return has_bounded_width_certificate(kernel)


def analyse_template(template: Instance, obstruction_bound: int = 4) -> RewritabilityReport:
    """Run both Theorem 5.10 decision procedures on one template and, when
    ``coCSP(B)`` is FO-rewritable, count its critical obstructions within
    the bound (the certificates behind the constructive Section 5.3 side)."""
    fo = cocsp_fo_rewritable(template)
    datalog = fo or cocsp_datalog_rewritable(template)
    obstructions = (
        bounded_obstruction_set(template, obstruction_bound, obstruction_bound)
        if fo
        else []
    )
    return RewritabilityReport(
        fo_rewritable=fo,
        datalog_rewritable=datalog,
        obstructions_found=len(obstructions),
    )


def fo_rewriting(template: Instance, max_elements: int = 4, max_facts: int = 4):
    """A UCQ rewriting of ``coCSP(B)`` from its (bounded) obstruction set.

    Only meaningful when ``coCSP(B)`` is FO-rewritable (Theorem 5.10 via
    finite duality); the construction is the one sketched at the end of
    Section 5.3 (obstructions become Boolean CQs).  The set — and hence
    the rewriting — is exact only within the size bounds; the planner's
    semantic stage (:mod:`repro.planner.semantic`) escalates the bounds
    and cross-validates before serving such a rewriting.
    """
    obstructions = bounded_obstruction_set(template, max_elements, max_facts)
    return ucq_rewriting_from_obstructions(obstructions)


def datalog_rewriting(template: Instance):
    """The canonical arc-consistency datalog program for ``coCSP(B)``
    (Feder–Vardi; the constructive half of Theorem 5.10's bounded-width
    direction).

    Sound for every template; complete exactly for the width-1
    (tree-duality) templates — decidable with
    :func:`repro.csp.canonical_datalog.has_tree_duality` — which covers
    all binary-schema templates arising from the (ALC, AQ) examples
    reproduced here.  For higher width, the semantic (k, k+1)-consistency
    procedure of :mod:`repro.csp.canonical_datalog` is the reference
    rewriting.
    """
    return canonical_arc_consistency_program(template)


# -- generalized CSPs with marked elements (Proposition 5.11 / Theorem 5.15) ----------


def marked_template_expansion(template: MarkedInstance) -> Instance:
    """``(B, b)^c``: replace marked elements by fresh unary relations P1..Pn."""
    expanded, _symbols = expansion_with_constants(template.instance, template.marks)
    return expanded


def generalized_fo_rewritable(templates: Sequence[MarkedInstance]) -> bool:
    """FO-rewritability of a generalized coCSP with marked elements
    (Proposition 5.11 (1) + the pruning observation before Theorem 5.15)."""
    pruned = incomparable_marked(list(templates))
    return all(
        cocsp_fo_rewritable(marked_template_expansion(t)) for t in pruned
    )


def generalized_datalog_rewritable(templates: Sequence[MarkedInstance]) -> bool:
    """Datalog-rewritability of a generalized coCSP with marked elements
    (Proposition 5.11 (2))."""
    pruned = incomparable_marked(list(templates))
    return all(
        cocsp_datalog_rewritable(marked_template_expansion(t)) for t in pruned
    )


def generalized_unmarked_fo_rewritable(templates: Sequence[Instance]) -> bool:
    """Lemma 5.13: for homomorphically incomparable templates, coCSP(F) is
    FO-rewritable iff each coCSP(B) is."""
    pruned = prune_to_incomparable(list(templates))
    return all(cocsp_fo_rewritable(t) for t in pruned)


def generalized_unmarked_datalog_rewritable(templates: Sequence[Instance]) -> bool:
    pruned = prune_to_incomparable(list(templates))
    return all(cocsp_datalog_rewritable(t) for t in pruned)


# -- empirical validation helpers -------------------------------------------------------


def rewriting_agrees_on(
    template: Instance,
    rewriting_cqs,
    data_instances: Sequence[Instance],
) -> bool:
    """Check a UCQ rewriting of ``coCSP(B)`` against the homomorphism semantics
    on a family of data instances."""
    from ..core.homomorphism import has_homomorphism

    for data in data_instances:
        expected = not has_homomorphism(data, template)
        got = any(cq.holds_in(data, ()) for cq in rewriting_cqs)
        if expected != got:
            return False
    return True


def arc_consistency_agrees_on(
    template: Instance, data_instances: Sequence[Instance], k: int | None = None
) -> bool:
    """Check the (canonical) consistency procedure against the homomorphism
    semantics on a family of data instances."""
    from ..core.homomorphism import has_homomorphism

    for data in data_instances:
        expected = not has_homomorphism(data, template)
        if k is None:
            got = arc_consistency_refutes(template, data)
        else:
            got = k_consistency_refutes(template, data, k)
        if expected != got:
            return False
    return True
