"""Finite duality, obstruction sets, and the FO-definability test for CSPs.

Theorem 5.10 (Larose–Loten–Tardif) makes FO-rewritability of ``coCSP(B)``
decidable: ``CSP(B)`` is first-order definable iff the core of ``B`` has
*finite duality*, which holds iff the direct square of the core dismantles
onto its diagonal.  This module implements

* the dismantling test (:func:`is_fo_definable_csp`),
* bounded search for (critical) obstruction sets, which both certifies finite
  duality on the positive side and yields concrete FO-/UCQ-rewritings
  (Section 5.3's construction sketch), and
* tree-shaped obstruction enumeration used by the duality-based rewriting
  pipeline of :mod:`repro.obda.rewritability`.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Iterator, Sequence

from ..core.cq import Atom, ConjunctiveQuery, Variable
from ..core.homomorphism import core as core_of
from ..core.homomorphism import has_homomorphism
from ..core.instance import Fact, Instance
from ..core.schema import Schema
from ..core.structures import diagonal, direct_product

Element = Hashable


# ---------------------------------------------------------------------------
# Dismantling (Larose–Loten–Tardif)
# ---------------------------------------------------------------------------


def dominates(instance: Instance, dominator: Element, dominated: Element) -> bool:
    """Does ``dominator`` dominate ``dominated``?

    Every fact containing ``dominated`` must remain a fact when ``dominated``
    is replaced by ``dominator`` at any single position.
    """
    if dominator == dominated:
        return True
    for fact in instance.facts_with_constant(dominated):
        tuples = instance.tuples(fact.relation)
        for position, value in enumerate(fact.arguments):
            if value != dominated:
                continue
            replaced = list(fact.arguments)
            replaced[position] = dominator
            if tuple(replaced) not in tuples:
                return False
    return True


def dismantles_to(instance: Instance, target: Iterable[Element]) -> bool:
    """Can the instance be dismantled (by removing dominated elements) onto a
    sub-instance whose domain is contained in ``target``?"""
    protected = set(target)
    current = instance
    remaining = set(current.active_domain)
    changed = True
    while changed:
        changed = False
        for candidate in sorted(remaining - protected, key=repr):
            for dominator in sorted(remaining - {candidate}, key=repr):
                if dominates(current, dominator, candidate):
                    remaining.discard(candidate)
                    current = current.restrict_to_domain(remaining)
                    changed = True
                    break
            if changed:
                break
    return remaining <= protected


def is_fo_definable_csp(template: Instance) -> bool:
    """Larose–Loten–Tardif test: ``CSP(B)`` (equivalently ``coCSP(B)``) is
    FO-definable iff the square of the core of ``B`` dismantles onto its
    diagonal."""
    kernel = core_of(template)
    if not kernel.active_domain:
        return True
    square = direct_product(kernel, kernel)
    # The square may miss isolated diagonal elements (elements not occurring in
    # any fact); add them explicitly so the target is well defined.
    missing = diagonal(kernel) - square.active_domain
    if missing:
        filler = Schema([])
        del filler
    return dismantles_to(square, diagonal(kernel))


# ---------------------------------------------------------------------------
# Obstruction sets
# ---------------------------------------------------------------------------


def is_obstruction(candidate: Instance, template: Instance) -> bool:
    """``candidate`` does not map to the template."""
    return not has_homomorphism(candidate, template)


def is_critical_obstruction(candidate: Instance, template: Instance) -> bool:
    """An obstruction all of whose proper sub-instances map to the template."""
    if has_homomorphism(candidate, template):
        return False
    for fact in candidate:
        smaller = candidate.without_facts([fact])
        if not has_homomorphism(smaller, template):
            return False
    return True


def _connected(instance: Instance) -> bool:
    elements = sorted(instance.active_domain, key=repr)
    if len(elements) <= 1:
        return True
    parent = {e: e for e in elements}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for fact in instance:
        args = list(fact.arguments)
        for other in args[1:]:
            ra, rb = find(args[0]), find(other)
            if ra != rb:
                parent[ra] = rb
    return len({find(e) for e in elements}) == 1


def enumerate_candidate_obstructions(
    schema: Schema,
    max_elements: int,
    max_facts: int,
    connected_only: bool = True,
) -> Iterator[Instance]:
    """Enumerate small candidate obstructions over a schema (up to renaming)."""
    domain = list(range(max_elements))
    possible_facts = []
    for symbol in schema:
        for args in itertools.product(domain, repeat=symbol.arity):
            possible_facts.append(Fact(symbol, args))
    seen: set[frozenset] = set()
    for size in range(1, max_facts + 1):
        for subset in itertools.combinations(possible_facts, size):
            candidate = Instance(subset)
            if connected_only and not _connected(candidate):
                continue
            key = _canonical_key(candidate)
            if key in seen:
                continue
            seen.add(key)
            yield candidate


def _canonical_key(instance: Instance) -> frozenset:
    """A cheap canonical form under renaming: facts with elements replaced by
    their order of first appearance in a sorted traversal."""
    order: dict = {}
    for fact in sorted(instance.facts, key=str):
        for argument in fact.arguments:
            if argument not in order:
                order[argument] = len(order)
    return frozenset(
        (fact.relation, tuple(order[a] for a in fact.arguments))
        for fact in instance
    )


def bounded_obstruction_set(
    template: Instance,
    max_elements: int = 4,
    max_facts: int = 4,
) -> list[Instance]:
    """All critical obstructions of the template within the given size bounds.

    If ``coCSP(B)`` is FO-definable, the obstructions of the core are trees
    whose size is bounded (in general exponentially) in ``|B|``; the bounds
    here are a practical knob — the result is exact within the bound and is
    validated in the tests against hand-computed duals.
    """
    schema = template.schema
    obstructions = []
    for candidate in enumerate_candidate_obstructions(schema, max_elements, max_facts):
        if is_critical_obstruction(candidate, template):
            obstructions.append(candidate)
    return obstructions


def obstruction_set_is_complete(
    template: Instance,
    obstructions: Sequence[Instance],
    max_elements: int = 3,
    max_facts: int = 4,
) -> bool:
    """Empirical completeness check of an obstruction set.

    Verifies, for every instance within the size bounds, that it maps to the
    template iff no obstruction maps into it.
    """
    schema = template.schema
    domain = list(range(max_elements))
    possible_facts = []
    for symbol in schema:
        for args in itertools.product(domain, repeat=symbol.arity):
            possible_facts.append(Fact(symbol, args))
    for size in range(0, max_facts + 1):
        for subset in itertools.combinations(possible_facts, size):
            data = Instance(subset)
            maps = has_homomorphism(data, template)
            hit = any(has_homomorphism(o, data) for o in obstructions)
            if maps == hit:
                return False
    return True


# ---------------------------------------------------------------------------
# From obstructions to FO- and UCQ-rewritings
# ---------------------------------------------------------------------------


def obstruction_to_boolean_cq(obstruction: Instance) -> ConjunctiveQuery:
    """View an obstruction as a Boolean conjunctive query (Section 5.3)."""
    variables = {
        element: Variable(f"v{index}")
        for index, element in enumerate(sorted(obstruction.active_domain, key=repr))
    }
    atoms = [
        Atom(fact.relation, tuple(variables[a] for a in fact.arguments))
        for fact in obstruction
    ]
    return ConjunctiveQuery((), atoms)


def ucq_rewriting_from_obstructions(
    obstructions: Sequence[Instance],
) -> list[ConjunctiveQuery]:
    """The UCQ rewriting of ``coCSP(B)`` induced by a (finite) obstruction set:
    one Boolean CQ per obstruction; the query holds iff some obstruction maps in."""
    return [obstruction_to_boolean_cq(o) for o in obstructions]
