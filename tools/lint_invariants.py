"""Repo-invariant AST lint: the rules ruff has no vocabulary for.

Five invariants keep the engine's observability honest and its core
encapsulated; each is enforced over ``src/`` by CI's static-analysis job::

    python tools/lint_invariants.py src

* **RL001** — ``perf_counter`` is referenced only inside ``repro/obs``
  (and the benchmark harness, which is not under ``src``).  Everything
  else times through the ``repro.obs.telemetry.now`` alias, so there is a
  single seam for faking time.
* **RL002** — no span open (``maybe_span(...)`` or ``*.span(...)``)
  lexically inside a ``for``/``while`` loop: spans are for coarse scopes;
  per-row spans melt the hot path (see ``docs/observability.md``).
* **RL003** — every ``tel.count/record/event/span`` call on a name bound
  from ``ACTIVE`` sits behind the one-load guard: either an enclosing
  ``if tel is not None:`` (or ``if tel:``) or an earlier terminal
  ``if tel is None: return`` in the same function.
* **RL004** — ``Instance`` internals (``_facts``, ``_by_relation``, ...)
  are dereferenced only on ``self``/``cls`` or inside ``repro/core``:
  the columnar layout is ``core``'s private business.
* **RL005** — sessions inside ``src/`` are constructed through the
  unified ``PlanPolicy`` object: ``ObdaSession(...)`` /
  ``ShardedObdaSession(...)`` calls carrying the deprecated legacy
  keywords (``force_tier=``, ``semantic=``, ``semantic_budget=``,
  ``check=``) are flagged — the aliases exist for *external* callers
  mid-migration, not for the library itself.

A finding can be waived on its own line with ``# lint: allow(RL00x)``.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

#: Path fragments (POSIX) inside which RL001 does not apply.
CLOCK_ALLOWED = ("repro/obs/",)
#: Path fragments inside which RL004 does not apply.
CORE_ALLOWED = ("repro/core/",)
#: Instance-internal attributes (mirrors ``core/instance.py``).
PRIVATE_INSTANCE_ATTRS = frozenset(
    {
        "_facts",
        "_by_relation",
        "_by_position",
        "_by_constant",
        "_columns",
        "_interner",
        "_adom",
        "_domain",
        "_declared_schema",
    }
)
#: Telemetry recorder methods that must sit behind the one-load guard.
GUARDED_METHODS = frozenset({"count", "record", "event", "span"})
#: Session constructors covered by RL005 and the keywords they deprecate.
SESSION_CONSTRUCTORS = frozenset({"ObdaSession", "ShardedObdaSession"})
LEGACY_SESSION_KWARGS = frozenset(
    {"force_tier", "semantic", "semantic_budget", "check"}
)


@dataclass(frozen=True)
class Violation:
    path: Path
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _allowed(source_lines: list[str], line: int, code: str) -> bool:
    if 1 <= line <= len(source_lines):
        return f"lint: allow({code})" in source_lines[line - 1]
    return False


def _in(path: Path, fragments: tuple[str, ...]) -> bool:
    posix = path.as_posix()
    return any(fragment in posix for fragment in fragments)


class _Annotator(ast.NodeVisitor):
    """Stamp every node with its parent and enclosing function."""

    def __init__(self) -> None:
        self.function: ast.AST | None = None

    def visit(self, node: ast.AST) -> None:
        is_function = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        outer = self.function
        if is_function:
            self.function = node
        for child in ast.iter_child_nodes(node):
            child._parent = node  # type: ignore[attr-defined]
            child._function = self.function  # type: ignore[attr-defined]
            self.visit(child)
        self.function = outer


def _ancestors(node: ast.AST):
    current = getattr(node, "_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_parent", None)


def _is_span_open(call: ast.Call) -> bool:
    function = call.func
    if isinstance(function, ast.Name):
        return function.id == "maybe_span"
    if isinstance(function, ast.Attribute):
        return function.attr in ("span", "maybe_span")
    return False


def _test_guards(test: ast.AST, name: str, positive: bool) -> bool:
    """Does ``test`` establish ``name is not None`` (``positive``) or
    ``name is None`` (``not positive``)?"""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, (comparator,) = test.left, tuple(test.comparators)
        operands = (left, comparator)
        has_name = any(
            isinstance(op, ast.Name) and op.id == name for op in operands
        )
        has_none = any(
            isinstance(op, ast.Constant) and op.value is None for op in operands
        )
        if has_name and has_none:
            wants = ast.IsNot if positive else ast.Is
            return isinstance(test.ops[0], wants)
        return False
    if positive and isinstance(test, ast.Name):
        return test.id == name  # ``if tel:`` — truthy recorder
    if positive and isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_test_guards(value, name, True) for value in test.values)
    return False


def _terminal(statements: list[ast.stmt]) -> bool:
    return bool(statements) and isinstance(
        statements[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _guarded(call: ast.Call, name: str) -> bool:
    # (a) an enclosing ``if/while name is not None`` (or ``if name:``),
    # including conditional expressions.
    for ancestor in _ancestors(call):
        if isinstance(ancestor, (ast.If, ast.While, ast.IfExp)) and _test_guards(
            ancestor.test, name, True
        ):
            return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    # (b) an earlier terminal ``if name is None: return/raise/...`` in the
    # same function (the early-exit idiom of the SAT core).
    function = getattr(call, "_function", None)
    if function is None:
        return False
    return any(
        isinstance(node, ast.If)
        and _test_guards(node.test, name, False)
        and _terminal(node.body)
        and node.lineno < call.lineno
        and getattr(node, "_function", None) is function
        for node in ast.walk(function)
    )


def _active_names(function: ast.AST) -> set[str]:
    """Names bound from ``*.ACTIVE`` anywhere in the function."""
    names: set[str] = set()
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "ACTIVE"
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def lint_file(path: Path) -> list[Violation]:
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Violation(path, error.lineno or 0, "RL000", f"syntax error: {error}")]
    _Annotator().visit(tree)
    lines = source.splitlines()
    found: list[Violation] = []

    def report(node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if not _allowed(lines, line, code):
            found.append(Violation(path, line, code, message))

    active_cache: dict[int, set[str]] = {}
    for node in ast.walk(tree):
        # RL001 — perf_counter confined to repro/obs.
        references_clock = (
            isinstance(node, ast.Attribute) and node.attr == "perf_counter"
        ) or (isinstance(node, ast.Name) and node.id == "perf_counter")
        if references_clock and not _in(path, CLOCK_ALLOWED):
            report(
                node,
                "RL001",
                "perf_counter outside repro/obs; time through "
                "repro.obs.telemetry.now instead",
            )
        if not isinstance(node, ast.Call):
            continue
        # RL002 — no span opens inside loops.
        if _is_span_open(node):
            function = getattr(node, "_function", None)
            for ancestor in _ancestors(node):
                if ancestor is function:
                    break
                if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
                    report(
                        node,
                        "RL002",
                        "span opened inside a loop; spans are for coarse "
                        "scopes — hoist it or use a counter/histogram",
                    )
                    break
        # RL005 — no legacy-kwarg session construction inside src/.
        constructor = node.func
        constructor_name = (
            constructor.id
            if isinstance(constructor, ast.Name)
            else constructor.attr if isinstance(constructor, ast.Attribute) else None
        )
        if constructor_name in SESSION_CONSTRUCTORS:
            legacy = sorted(
                keyword.arg
                for keyword in node.keywords
                if keyword.arg in LEGACY_SESSION_KWARGS
            )
            if legacy:
                report(
                    node,
                    "RL005",
                    f"{constructor_name}(...) built with deprecated "
                    f"keyword(s) {', '.join(legacy)}; pass "
                    "policy=PlanPolicy(...) instead",
                )
        # RL003 — recorder calls behind the one-load guard.
        function = getattr(node, "_function", None)
        if (
            function is not None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in GUARDED_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            names = active_cache.setdefault(id(function), _active_names(function))
            name = node.func.value.id
            if name in names and not _guarded(node, name):
                report(
                    node,
                    "RL003",
                    f"telemetry call {name}.{node.func.attr}(...) not behind "
                    f"an `if {name} is not None` guard",
                )
    # RL004 — Instance internals stay inside core (or self/cls).
    if not _in(path, CORE_ALLOWED):
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in PRIVATE_INSTANCE_ATTRS
            ):
                value = node.value
                if isinstance(value, ast.Name) and value.id in ("self", "cls"):
                    continue
                report(
                    node,
                    "RL004",
                    f"access to Instance internal {node.attr!r} outside "
                    "repro/core; use the public Instance API",
                )
    return found


def lint_paths(paths: list[Path]) -> list[Violation]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    found: list[Violation] = []
    for file in files:
        found.extend(lint_file(file))
    return found


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if not arguments:
        arguments = ["src"]
    violations = lint_paths([Path(a) for a in arguments])
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} invariant violation(s)")
        return 1
    print("invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
