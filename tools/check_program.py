"""Lint MDDlog workloads from the command line (CI's static-analysis job).

A thin launcher around ``python -m repro.analysis`` that works from a
fresh checkout without ``PYTHONPATH`` gymnastics::

    python tools/check_program.py repro.workloads.medical examples/*.py

With no targets, lints the default corpus: every ``repro.workloads``
module plus every ``examples/*.py`` script.  Exit status follows the CLI:
0 clean, 1 diagnostics at failing severity, 2 harvest/import failure.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.__main__ import main  # noqa: E402


def default_targets() -> list[str]:
    """The committed corpus: all workload modules and example scripts."""
    workloads = sorted(
        f"repro.workloads.{path.stem}"
        for path in (REPO_ROOT / "src" / "repro" / "workloads").glob("*.py")
        if path.stem != "__init__"
    )
    examples = sorted(
        str(path.relative_to(Path.cwd()))
        if path.is_relative_to(Path.cwd())
        else str(path)
        for path in (REPO_ROOT / "examples").glob("*.py")
    )
    return workloads + examples


if __name__ == "__main__":
    argv = sys.argv[1:]
    if not any(not arg.startswith("-") for arg in argv):
        argv = argv + default_targets()
    sys.exit(main(argv))
