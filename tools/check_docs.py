"""Keep the documentation honest: runnable fences, unbroken links.

Scans the repo's user-facing markdown (``README.md``, ``docs/*.md``, plus
``ARCHITECTURE.md`` for links) and fails when

* a ```python fence does not run as a standalone script (executed with
  ``PYTHONPATH=src`` from the repo root, one subprocess per fence), or
* an intra-repo markdown link ``[text](path)`` points at a file that does
  not exist (external ``http(s)``/``mailto`` targets and pure ``#anchor``
  links are skipped; a trailing ``#fragment`` is stripped before the
  existence check).

Run directly (CI's docs job) or import ``check_links`` / ``iter_fences``
from tests::

    python tools/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FENCE_TIMEOUT_S = 180

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_OPEN = re.compile(r"^```(\w+)?\s*$")


def fence_files() -> list[Path]:
    """Markdown whose python fences must run."""
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


def link_files() -> list[Path]:
    """Markdown whose intra-repo links must resolve."""
    return fence_files() + [REPO_ROOT / "ARCHITECTURE.md"]


def iter_fences(path: Path) -> list[tuple[int, str, str]]:
    """``(start line, language, code)`` for every fenced block in a file."""
    fences: list[tuple[int, str, str]] = []
    language: str | None = None
    start = 0
    body: list[str] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if language is None:
            match = _FENCE_OPEN.match(line)
            if match:
                language = match.group(1) or ""
                start = number
                body = []
        elif line.strip() == "```":
            fences.append((start, language, "\n".join(body)))
            language = None
        else:
            body.append(line)
    return fences


def check_links(paths: list[Path]) -> list[str]:
    """Broken intra-repo links, as ``file:line-less`` failure messages."""
    failures: list[str] = []
    for path in paths:
        if not path.exists():
            failures.append(f"{path.relative_to(REPO_ROOT)}: file is missing")
            continue
        for target in _LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                failures.append(
                    f"{path.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return failures


def run_fences(paths: list[Path]) -> list[str]:
    """Execute every ```python fence; returns failure messages."""
    failures: list[str] = []
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    for path in paths:
        if not path.exists():
            continue
        for line, language, code in iter_fences(path):
            if language != "python":
                continue
            where = f"{path.relative_to(REPO_ROOT)}:{line}"
            try:
                result = subprocess.run(
                    [sys.executable, "-c", code],
                    cwd=REPO_ROOT,
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=FENCE_TIMEOUT_S,
                )
            except subprocess.TimeoutExpired:
                failures.append(f"{where}: fence timed out ({FENCE_TIMEOUT_S}s)")
                continue
            if result.returncode != 0:
                detail = (result.stderr or result.stdout).strip().splitlines()
                failures.append(
                    f"{where}: fence failed — {detail[-1] if detail else 'no output'}"
                )
    return failures


def main() -> int:
    failures = check_links(link_files())
    fence_count = sum(
        1
        for path in fence_files()
        if path.exists()
        for _line, language, _code in iter_fences(path)
        if language == "python"
    )
    failures.extend(run_fences(fence_files()))
    if failures:
        print(f"docs check FAILED ({len(failures)} problem(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"docs check OK: {len(link_files())} file(s), "
        f"{fence_count} python fence(s) ran clean"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
