"""Property tests for the interned columnar core.

The interner is the trust anchor of the whole evaluation path: every join,
fixpoint and grounding runs over its dense int codes and decodes back to
constants only at API boundaries.  These tests pin the two invariants the
design rests on — round-trip fidelity (intern → extern is the identity,
including for distinct constants whose ``repr`` collide) and append-only
code stability — plus the bucket/statistics consistency of the columnar
stores and the translation arrays behind instance union and shard merge.
"""

import random

import pytest

from repro.core import Fact, Instance, RelationSymbol
from repro.core.interning import (
    ColumnarRelation,
    Interner,
    MutableColumnarRelation,
)

A = RelationSymbol("A", 1)
R = RelationSymbol("R", 2)


class SameRepr:
    """Distinct constants whose ``repr`` (and ``str``) collide on purpose.

    Interning must key on the constants themselves, never on their printed
    form — the invariant ``canonical_key`` documents for the join engine.
    """

    def __init__(self, tag):
        self.tag = tag

    def __repr__(self):
        return "<same>"

    def __eq__(self, other):
        return isinstance(other, SameRepr) and self.tag == other.tag

    def __hash__(self):
        return hash(("SameRepr", self.tag))


def _mixed_pool(rng: random.Random) -> list:
    # no True/1 or 1/1.0 pairs: those are *equal* constants under Python's
    # own semantics, so the interner (correctly) assigns them one code
    pool = [1, 2, "1", "2", (1, 2), ("a",), frozenset({1}), None]
    pool += [SameRepr(0), SameRepr(1)]
    rng.shuffle(pool)
    return pool


@pytest.mark.parametrize("seed", range(10))
def test_intern_extern_round_trip(seed):
    rng = random.Random(seed)
    pool = _mixed_pool(rng)
    interner = Interner()
    codes = {}
    for _ in range(200):
        value = rng.choice(pool)
        code = interner.intern(value)
        # append-only: re-interning returns the original code forever
        assert codes.setdefault(id_key(value), code) == code
        assert interner.value(code) is value or interner.value(code) == value
        assert interner.code(value) == code
        assert value in interner
    # dense: codes are exactly 0..n-1
    assert sorted(codes.values()) == list(range(len(interner)))
    # row round trip over random widths
    for _ in range(50):
        row_values = tuple(rng.choice(pool) for _ in range(rng.randint(0, 4)))
        row = interner.intern_row(row_values)
        assert interner.decode_row(row) == row_values
        assert tuple(interner.decode_many(row)) == row_values


def id_key(value):
    """Identity-ish key distinguishing equal-repr constants in the test."""
    return (type(value).__name__, repr(value), getattr(value, "tag", value))


def test_distinct_constants_with_equal_reprs_stay_distinct():
    left, right = SameRepr(0), SameRepr(1)
    assert repr(left) == repr(right) and left != right
    interner = Interner()
    code_left, code_right = interner.intern(left), interner.intern(right)
    assert code_left != code_right
    assert interner.value(code_left) == left
    assert interner.value(code_right) == right
    # the same invariant observed through the instance API
    instance = Instance([Fact(A, (left,)), Fact(R, (left, right))])
    assert instance.tuples_with(A, 0, left) == frozenset({(left,)})
    assert instance.tuples_with(A, 0, right) == frozenset()
    assert instance.facts_with_constant(right) == frozenset(
        {Fact(R, (left, right))}
    )
    assert len(instance.active_domain) == 2


def test_unknown_values_have_no_code():
    interner = Interner()
    interner.intern("known")
    assert interner.code("unknown") is None
    assert "unknown" not in interner
    assert len(interner) == 1


@pytest.mark.parametrize("seed", range(5))
def test_remap_from_translates_codes(seed):
    rng = random.Random(100 + seed)
    pool = _mixed_pool(rng)
    left, right = Interner(), Interner()
    for _ in range(30):
        left.intern(rng.choice(pool))
    for _ in range(30):
        right.intern(rng.choice(pool))
    mapping = left.remap_from(right)
    assert len(mapping) == len(right)
    for code in range(len(right)):
        assert left.value(mapping[code]) == right.value(code)
    # self-remap is the identity
    assert left.remap_from(left) == list(range(len(left)))


@pytest.mark.parametrize("seed", range(5))
def test_columnar_buckets_match_linear_scans(seed):
    rng = random.Random(200 + seed)
    rows = {
        (rng.randint(0, 5), rng.randint(0, 5)) for _ in range(rng.randint(0, 40))
    }
    frozen = ColumnarRelation(2, frozenset(rows))
    mutable = MutableColumnarRelation(2)
    mutable.bucket(0, 0)  # force buckets early: adds maintain them in place
    for row in rows:
        assert mutable.add(row)
        assert not mutable.add(row)
    for store in (frozen, mutable, mutable.freeze()):
        assert set(store.rows) == rows
        for position in (0, 1):
            for code in range(-1, 7):
                expected = frozenset(
                    row for row in rows if row[position] == code
                )
                assert frozenset(store.bucket(position, code)) == expected
        assert store.distinct_counts() == tuple(
            len({row[position] for row in rows}) for position in (0, 1)
        )
    assert frozen.sorted_rows() == tuple(sorted(rows))
    # no-op edits return the same object; real edits rebuild lazily
    assert frozen.with_rows(list(rows)) is frozen
    assert frozen.without_rows([(9, 9)]) is frozen
    grown = frozen.with_rows([(9, 9)])
    assert (9, 9) in grown.rows and (9, 9) not in frozen.rows
