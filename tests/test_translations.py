"""Semantic equivalence tests for the paper's translation theorems.

Each translation is checked on the paper's own examples and on exhaustive /
random families of small instances: source and target must return identical
answers.
"""


import pytest

from repro.core import (
    Atom,
    Fact,
    Instance,
    RelationSymbol,
    Schema,
    Variable,
    all_instances_over,
    atomic_query,
    vars_,
)
from repro.datalog import (
    DisjunctiveDatalogProgram,
    Rule,
    evaluate,
    evaluate_boolean,
    goal_atom,
)
from repro.fpp import ForbiddenPatternsProblem, colour_instance, make_palette
from repro.mmsnp import CoMMSNPQuery, Implication, MMSNPFormula, SchemaAtom, SOAtom, SOVariable
from repro.translations import (
    alc_aq_to_mddlog,
    alc_ucq_to_mddlog,
    csp_to_mddlog,
    csp_to_omq,
    fpp_to_mddlog,
    marked_csp_to_omq,
    mddlog_to_alc_aq,
    mddlog_to_alc_ucq,
    mddlog_to_fpp,
    mddlog_to_mmsnp,
    mmsnp_to_mddlog,
    omq_to_csp,
)
from repro.workloads.csp_zoo import clique_template, cycle_graph
from repro.workloads.medical import (
    example_2_1_omq,
    example_4_5_omq,
    family_instance,
    patient_instance,
)

EDGE = RelationSymbol("edge", 2)
A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
x, y = vars_("x", "y")


def small_instances(schema, max_elements=2, max_facts=3):
    domain = [f"e{i}" for i in range(max_elements)]
    return [d for d in all_instances_over(schema, domain, max_facts) if not d.is_empty()]


# -- Theorem 3.4: (ALC, AQ) <-> unary connected simple MDDlog -------------------------


def test_alc_aq_to_mddlog_is_unary_connected_simple():
    program = alc_aq_to_mddlog(example_4_5_omq())
    assert program.is_monadic()
    assert program.is_unary()
    assert program.is_connected()
    assert program.is_simple()


def test_alc_aq_to_mddlog_equivalence_on_chains():
    omq = example_4_5_omq()
    program = alc_aq_to_mddlog(omq)
    for generations, marked in [(1, True), (2, True), (2, False)]:
        data = family_instance(generations, predisposed_root=marked)
        assert evaluate(program, data) == omq.certain_answers(data)


def test_alc_aq_to_mddlog_equivalence_exhaustive():
    omq = example_4_5_omq()
    program = alc_aq_to_mddlog(omq)
    for data in small_instances(omq.data_schema, max_elements=2, max_facts=2):
        assert evaluate(program, data) == omq.certain_answers(data), repr(data)


def test_mddlog_to_alc_aq_round_trip():
    """A hand-written unary connected simple MDDlog program and its (ALC, AQ)
    translation agree on all small instances."""
    P = RelationSymbol("P", 1)
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (x,)),), (Atom(A, (x,)),)),
            Rule((Atom(P, (x,)),), (Atom(EDGE, (x, y)), Atom(P, (y,)))),
            Rule((goal_atom(x),), (Atom(P, (x,)),)),
        ]
    )
    omq = mddlog_to_alc_aq(program)
    assert omq.omq_language().endswith("AQ)")
    schema = Schema([A, EDGE])
    for data in small_instances(schema, max_elements=2, max_facts=2):
        assert evaluate(program, data) == omq.certain_answers(data), repr(data)


def test_mddlog_to_alc_aq_rejects_non_simple_programs():
    program = DisjunctiveDatalogProgram(
        [Rule((goal_atom(x),), (Atom(A, (x,)), Atom(B, (y,))))]
    )
    with pytest.raises(ValueError):
        mddlog_to_alc_aq(program)


# -- Theorem 3.3: (ALC, UCQ) <-> MDDlog ------------------------------------------------


def test_alc_ucq_to_mddlog_on_example_2_1():
    omq = example_2_1_omq()
    program = alc_ucq_to_mddlog(omq)
    assert program.is_monadic()
    data = patient_instance()
    assert evaluate(program, data) == omq.certain_answers(data)


def test_alc_ucq_to_mddlog_exhaustive_small_schema():
    """Equivalence on every instance over a two-element domain for an ontology
    with a disjunction and an existential."""
    from repro.dl import ConceptInclusion, ConceptName, Exists, Ontology, Role
    from repro.omq import OntologyMediatedQuery

    ontology = Ontology(
        [
            ConceptInclusion(
                ConceptName("A"), Exists(Role("edge"), ConceptName("B"))
            ),
            ConceptInclusion(ConceptName("B"), ConceptName("A") | ConceptName("C")),
        ]
    )
    schema = Schema.binary(["A", "B", "C"], ["edge"])
    query_b = atomic_query("C")
    omq = OntologyMediatedQuery(ontology=ontology, query=query_b, data_schema=schema)
    program = alc_ucq_to_mddlog(omq)
    for data in small_instances(schema, max_elements=2, max_facts=2):
        assert evaluate(program, data) == omq.certain_answers(data), repr(data)


def test_mddlog_to_alc_ucq_round_trip_two_colourability():
    """coCSP(K2) as MDDlog, translated to (ALC, UCQ), keeps its answers."""
    program = csp_to_mddlog(clique_template(2))
    omq = mddlog_to_alc_ucq(program)
    for data in [cycle_graph(3), cycle_graph(4), cycle_graph(5)]:
        expected = evaluate_boolean(program, data)
        got = omq.certain_answers(data, engine="forest") == {()}
        assert expected == got


def test_alc_ucq_translation_size_is_bounded():
    omq = example_2_1_omq()
    program = alc_ucq_to_mddlog(omq)
    # single-exponential bound of Theorem 3.3 (vastly generous here)
    assert program.size() <= 2 ** (omq.size())


# -- Proposition 3.2: coFPP <-> Boolean MDDlog ----------------------------------------


def two_colour_fpp():
    schema = Schema([EDGE])
    palette = make_palette(2)
    monochromatic = []
    for colour in palette:
        pattern_data = Instance([Fact(EDGE, ("u", "v"))])
        monochromatic.append(
            colour_instance(pattern_data, palette, {"u": colour, "v": colour})
        )
    return ForbiddenPatternsProblem(schema, palette, monochromatic)


def test_fpp_semantics():
    problem = two_colour_fpp()
    assert problem.in_forb(cycle_graph(4))
    assert not problem.in_forb(cycle_graph(3))
    assert problem.co_fpp_query(cycle_graph(3))


def test_fpp_to_mddlog_equivalence():
    problem = two_colour_fpp()
    program = fpp_to_mddlog(problem)
    assert program.is_monadic() and program.is_boolean()
    for data in [cycle_graph(3), cycle_graph(4), cycle_graph(5)]:
        assert evaluate_boolean(program, data) == problem.co_fpp_query(data)


def test_mddlog_to_fpp_equivalence():
    program = csp_to_mddlog(clique_template(2))
    problem = mddlog_to_fpp(program)
    for data in [cycle_graph(3), cycle_graph(4)]:
        assert problem.co_fpp_query(data) == evaluate_boolean(program, data)


# -- Proposition 4.1: coMMSNP <-> MDDlog ------------------------------------------------


def two_colour_mmsnp():
    X = SOVariable("X")
    u, v = Variable("u"), Variable("v")
    implications = [
        Implication((SchemaAtom(EDGE, (u, v)), SOAtom(X, (u,)), SOAtom(X, (v,))), ()),
        Implication(
            (SchemaAtom(EDGE, (u, v)),),
            (SOAtom(X, (u,)), SOAtom(X, (v,))),
        ),
    ]
    return MMSNPFormula([X], implications)


def test_mmsnp_evaluation():
    formula = two_colour_mmsnp()
    assert formula.holds(cycle_graph(4))
    assert not formula.holds(cycle_graph(3))
    query = CoMMSNPQuery(formula)
    assert query.holds_in(cycle_graph(3))


def test_mmsnp_to_mddlog_equivalence():
    formula = two_colour_mmsnp()
    program = mmsnp_to_mddlog(formula)
    assert program.is_monadic()
    for data in [cycle_graph(3), cycle_graph(4), cycle_graph(5)]:
        assert evaluate_boolean(program, data) == (not formula.holds(data))


def test_mddlog_to_mmsnp_equivalence():
    program = csp_to_mddlog(clique_template(2))
    formula = mddlog_to_mmsnp(program)
    assert formula.is_mmsnp()
    for data in [cycle_graph(3), cycle_graph(4)]:
        assert (not formula.holds(data)) == evaluate_boolean(program, data)


def test_mddlog_to_mmsnp_unary_free_variable():
    P = RelationSymbol("P", 1)
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (x,)),), (Atom(A, (x,)),)),
            Rule((goal_atom(x),), (Atom(P, (x,)),)),
        ]
    )
    formula = mddlog_to_mmsnp(program)
    query = CoMMSNPQuery(formula)
    data = Instance([Fact(A, (1,)), Fact(EDGE, (1, 2))])
    assert query.evaluate(data) == evaluate(program, data)


# -- Theorem 4.6: atomic OMQs <-> (generalized, marked) coCSP ---------------------------


def test_omq_to_csp_example_4_5():
    """Example 4.5: the hereditary-predisposition AQ corresponds to a coCSP
    with one marked element, and the two sides agree on chains."""
    omq = example_4_5_omq()
    encoding = omq_to_csp(omq)
    assert not encoding.boolean
    assert encoding.marked_templates
    cocsp = encoding.as_cocsp_query()
    for generations, marker in [(1, True), (2, True), (2, False)]:
        data = family_instance(generations, predisposed_root=marker)
        assert cocsp.evaluate(data) == omq.certain_answers(data)


def test_omq_to_csp_boolean_case():
    from repro.core import boolean_atomic_query
    from repro.omq import OntologyMediatedQuery
    from repro.workloads.medical import example_4_5_ontology, example_4_5_schema

    omq = OntologyMediatedQuery(
        ontology=example_4_5_ontology(),
        query=boolean_atomic_query("HereditaryPredisposition"),
        data_schema=example_4_5_schema(),
    )
    encoding = omq_to_csp(omq)
    assert encoding.boolean
    cocsp = encoding.as_cocsp_query()
    data = family_instance(2, predisposed_root=True)
    assert cocsp.evaluate(data) == (omq.certain_answers(data) == {()})
    empty_case = family_instance(2, predisposed_root=False)
    assert cocsp.evaluate(empty_case) == (omq.certain_answers(empty_case) == {()})


def test_csp_to_mddlog_and_back_to_omq():
    template = clique_template(2)
    program = csp_to_mddlog(template)
    omq = csp_to_omq(template)
    for data in [cycle_graph(3), cycle_graph(4), cycle_graph(5)]:
        expected = not_has_hom = evaluate_boolean(program, data)
        assert (omq.certain_answers(data) == {()}) == expected
        del not_has_hom


def test_marked_csp_to_omq_round_trip():
    omq = example_4_5_omq()
    encoding = omq_to_csp(omq)
    rebuilt = marked_csp_to_omq(encoding.marked_templates, schema=omq.data_schema)
    for generations, marker in [(1, True), (2, False)]:
        data = family_instance(generations, predisposed_root=marker)
        assert rebuilt.certain_answers(data) == omq.certain_answers(data)
