"""Tests for disjunctive datalog programs, fragments and evaluation."""

import pytest

from repro.core import Atom, Fact, Instance, RelationSymbol, vars_
from repro.datalog import (
    DatalogProgram,
    DisjunctiveDatalogProgram,
    Rule,
    adom_atom,
    conjoin_datalog_queries,
    evaluate,
    evaluate_boolean,
    goal_atom,
    holds,
    models,
    union_datalog_queries,
)

EDGE = RelationSymbol("edge", 2)
A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
P = RelationSymbol("P", 1)
Q = RelationSymbol("Q", 1)
x, y, z = vars_("x", "y", "z")


def colouring_program():
    """goal() iff the graph is not 2-colourable."""
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (x,)), Atom(Q, (x,))), (adom_atom(x),)),
            Rule((), (Atom(P, (x,)), Atom(Q, (x,)))),
            Rule((goal_atom(),), (Atom(EDGE, (x, y)), Atom(P, (x,)), Atom(P, (y,)))),
            Rule((goal_atom(),), (Atom(EDGE, (x, y)), Atom(Q, (x,)), Atom(Q, (y,)))),
        ]
    )


def triangle():
    return Instance([Fact(EDGE, (1, 2)), Fact(EDGE, (2, 3)), Fact(EDGE, (3, 1))])


def square():
    return Instance(
        [Fact(EDGE, (1, 2)), Fact(EDGE, (2, 3)), Fact(EDGE, (3, 4)), Fact(EDGE, (4, 1))]
    )


def test_rule_validation():
    with pytest.raises(ValueError):
        Rule((Atom(P, (x,)),), ())  # empty body
    with pytest.raises(ValueError):
        Rule((Atom(P, (y,)),), (Atom(A, (x,)),))  # unsafe head variable


def test_rule_properties():
    rule = Rule((Atom(P, (x,)),), (Atom(EDGE, (x, y)), Atom(A, (y,))))
    assert rule.is_connected()
    assert rule.is_frontier_guarded()
    assert not rule.is_goal_rule()
    disconnected = Rule((Atom(P, (x,)),), (Atom(A, (x,)), Atom(B, (y,))))
    assert not disconnected.is_connected()


def test_program_fragment_classification():
    program = colouring_program()
    assert program.is_monadic()
    assert program.is_boolean()
    assert program.is_connected()
    assert program.is_frontier_guarded()
    assert program.is_simple()  # each rule has at most one EDB atom (edge)
    assert {s.name for s in program.edb_relations} == {"edge"}


def test_goal_in_body_rejected():
    with pytest.raises(ValueError):
        DisjunctiveDatalogProgram(
            [Rule((Atom(P, (x,)),), (Atom(RelationSymbol("goal", 1), (x,)),))]
        )


def test_two_colourability_evaluation():
    program = colouring_program()
    assert evaluate_boolean(program, triangle()) is True
    assert evaluate_boolean(program, square()) is False
    assert holds(program, triangle(), ())
    assert not holds(program, square(), ())


def test_evaluation_matches_model_enumeration_semantics():
    program = colouring_program()
    for data in (triangle(), square()):
        clause_based = evaluate_boolean(program, data)
        naive = all(
            () in model.tuples(program.goal_relation)
            for model in models(program, data)
        )
        assert clause_based == naive


def test_unary_ddlog_program_answers():
    program = DisjunctiveDatalogProgram(
        [
            Rule((goal_atom(x),), (Atom(A, (x,)),)),
            Rule((goal_atom(x),), (Atom(EDGE, (x, y)), Atom(B, (y,)))),
        ]
    )
    data = Instance([Fact(A, (1,)), Fact(EDGE, (2, 3)), Fact(B, (3,))])
    assert evaluate(program, data) == {(1,), (2,)}


def test_plain_datalog_least_fixpoint_reachability():
    reach = RelationSymbol("Reach", 1)
    program = DatalogProgram(
        [
            Rule((Atom(reach, (x,)),), (Atom(A, (x,)),)),
            Rule((Atom(reach, (y,)),), (Atom(reach, (x,)), Atom(EDGE, (x, y)))),
            Rule((goal_atom(x),), (Atom(reach, (x,)),)),
        ]
    )
    data = Instance([Fact(A, (1,)), Fact(EDGE, (1, 2)), Fact(EDGE, (2, 3)), Fact(EDGE, (4, 5))])
    assert program.evaluate(data) == {(1,), (2,), (3,)}


def test_datalog_program_rejects_disjunction():
    with pytest.raises(ValueError):
        DatalogProgram([Rule((Atom(P, (x,)), Atom(Q, (x,))), (adom_atom(x),))])


def test_conjoin_and_union_of_datalog_queries():
    first = DatalogProgram([Rule((goal_atom(x),), (Atom(A, (x,)),))])
    second = DatalogProgram([Rule((goal_atom(x),), (Atom(B, (x,)),))])
    data = Instance([Fact(A, (1,)), Fact(B, (1,)), Fact(A, (2,))])
    both = conjoin_datalog_queries([first, second])
    either = union_datalog_queries([first, second])
    assert both.evaluate(data) == {(1,)}
    assert either.evaluate(data) == {(1,), (2,)}


def test_ddlog_certain_answers_is_intersection_of_models():
    """Disjunction means certain answers can be empty even when every model
    derives something."""
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (x,)), Atom(Q, (x,))), (Atom(A, (x,)),)),
            Rule((goal_atom(x),), (Atom(P, (x,)),)),
        ]
    )
    data = Instance([Fact(A, (1,))])
    assert evaluate(program, data) == frozenset()
