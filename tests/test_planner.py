"""The tiered query planner: tier selection, unfolding, and cross-validation.

Pins the routing decisions for the paper's flagship workloads (Table 1
medical in rewritten form, the Example 2.2 datalog rewriting, coCSP(K3)),
unit-tests the UCQ unfolding, and cross-validates planner-routed and
forced-tier evaluation against each other and against the naive
model-enumeration reference on randomized programs.
"""

import itertools
import random

import pytest

from repro.core import Atom, Fact, Instance, RelationSymbol, Variable
from repro.core.cq import atomic_query
from repro.datalog import (
    DisjunctiveDatalogProgram,
    Rule,
    adom_atom,
    evaluate,
    goal_atom,
    models,
)
from repro.dl import FunctionalRole, Ontology, Role
from repro.obda.applications import plan_omq_workload, serve_omq_workload
from repro.omq.certain import certain_answers, compile_to_mddlog
from repro.omq.query import OntologyMediatedQuery
from repro.planner import (
    TIER_FIXPOINT,
    TIER_GROUND_SAT,
    TIER_REWRITE,
    analyse_program,
    auto_workers,
    estimate_cost,
    plan_for_tier,
    plan_program,
    unfold_to_ucq,
)
from repro.service import ObdaSession, ShardedObdaSession
from repro.service.session import _FixpointState, _SatState, _UcqState
from repro.translations.csp_templates import csp_to_mddlog
from repro.workloads.csp_zoo import three_colourability_template
from repro.workloads.medical import example_2_1_omq, patient_instance

A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
EDGE = RelationSymbol("edge", 2)
P = RelationSymbol("P", 1)
Q = RelationSymbol("Q", 1)
X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def _ucq_rewriting_program() -> DisjunctiveDatalogProgram:
    """The Table 1 q1 workload in UCQ-rewritten form (Example 2.2)."""
    hd = RelationSymbol("HasDiagnosis", 2)
    hf = RelationSymbol("HasFinding", 2)
    return DisjunctiveDatalogProgram(
        [
            Rule(
                (goal_atom(X),),
                (Atom(hd, (X, Y)), Atom(RelationSymbol("BacterialInfection", 1), (Y,))),
            ),
            Rule(
                (goal_atom(X),),
                (Atom(hd, (X, Y)), Atom(RelationSymbol("Listeriosis", 1), (Y,))),
            ),
            Rule(
                (goal_atom(X),),
                (Atom(hf, (X, Y)), Atom(RelationSymbol("ErythemaMigrans", 1), (Y,))),
            ),
        ]
    )


def _rewriting_program() -> DisjunctiveDatalogProgram:
    """The Example 2.2 recursive datalog rewriting of q2."""
    pred = RelationSymbol("HereditaryPredisposition", 1)
    parent = RelationSymbol("HasParent", 2)
    derived = RelationSymbol("P__derived", 1)
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(derived, (X,)),), (Atom(pred, (X,)),)),
            Rule((Atom(derived, (X,)),), (Atom(parent, (X, Y)), Atom(derived, (Y,)))),
            Rule((goal_atom(X),), (Atom(derived, (X,)),)),
        ]
    )


# ---------------------------------------------------------------------------
# Tier pinning for the flagship workloads
# ---------------------------------------------------------------------------


def test_medical_ucq_rewriting_routes_to_tier0():
    plan = plan_program(_ucq_rewriting_program())
    assert plan.tier == TIER_REWRITE
    assert plan.skips_sat
    assert plan.unfolding is not None
    assert len(plan.unfolding.goal_disjuncts) == 3
    assert plan.describe()["tier_name"] == "ucq-rewrite"


def test_datalog_rewriting_routes_to_tier1():
    plan = plan_program(_rewriting_program())
    assert plan.tier == TIER_FIXPOINT
    assert plan.skips_sat
    assert "P__derived" in plan.shape.recursive_relations


def test_cocsp_k3_routes_to_tier2():
    plan = plan_program(csp_to_mddlog(three_colourability_template()))
    assert plan.tier == TIER_GROUND_SAT
    assert not plan.skips_sat
    assert plan.shape.disjunctive_rule_count >= 1


def test_compiled_theorem33_medical_program_routes_to_tier2():
    """The Theorem 3.3 compilation of the Example 2.1 CQ stays on tier 2:
    syntactically disjunctive, and the semantic stage reports itself
    inapplicable (Theorem 4.6 covers atomic queries; the source query is
    a CQ) — see tests/test_semantic_routing.py for the compiled AQ
    workloads that do route off SAT."""
    program = compile_to_mddlog(example_2_1_omq())
    plan = plan_program(program)
    assert plan.tier == TIER_GROUND_SAT
    assert plan.semantic is not None
    assert "inapplicable" in plan.semantic.rationale


def test_plans_are_cached_per_program_object():
    program = _ucq_rewriting_program()
    assert plan_program(program) is plan_program(program)
    # a structurally equal but distinct program object is planned afresh
    assert plan_program(_ucq_rewriting_program()) is not plan_program(program)


# ---------------------------------------------------------------------------
# Structure analysis and unfolding
# ---------------------------------------------------------------------------


def test_analysis_census_counts_constraints_and_disjunction():
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (X,)), Atom(Q, (X,))), (adom_atom(X),)),
            Rule((), (Atom(P, (X,)), Atom(A, (X,)))),
            Rule((goal_atom(X),), (Atom(Q, (X,)),)),
        ]
    )
    shape = analyse_program(program)
    assert shape.rule_count == 3
    assert shape.constraint_count == 1
    assert shape.disjunctive_rule_count == 1
    assert not shape.recursive
    assert plan_program(program).tier == TIER_GROUND_SAT


def test_mutual_recursion_is_detected():
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (X,)),), (Atom(Q, (X,)), Atom(A, (X,)))),
            Rule((Atom(Q, (X,)),), (Atom(P, (X,)), Atom(B, (X,)))),
            Rule((Atom(Q, (X,)),), (Atom(B, (X,)),)),
            Rule((goal_atom(X),), (Atom(P, (X,)),)),
        ]
    )
    shape = analyse_program(program)
    assert set(shape.recursive_relations) == {"P", "Q"}
    assert plan_program(program).tier == TIER_FIXPOINT


def test_unfolding_handles_idb_chains_and_edb_leaves():
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (X,)),), (Atom(A, (X,)),)),
            Rule((Atom(P, (X,)),), (Atom(Q, (X,)),)),  # Q has no rules: EDB
            Rule((goal_atom(X),), (Atom(P, (X,)), Atom(EDGE, (X, Y)))),
        ]
    )
    unfolding = unfold_to_ucq(program)
    assert unfolding is not None
    leaves = {
        frozenset(a.relation.name for a in d.atoms)
        for d in unfolding.goal_disjuncts
    }
    # Q never occurs in a head, so (like the grounder) it is data-defined
    assert leaves == {frozenset({"A", "edge"}), frozenset({"Q", "edge"})}
    instance = Instance([Fact(A, (1,)), Fact(Q, (2,)), Fact(EDGE, (1, 3)), Fact(EDGE, (2, 2))])
    assert (
        evaluate(program, instance)
        == evaluate(program, instance, force_tier=TIER_GROUND_SAT)
        == frozenset({(1,), (2,)})
    )


def test_unfolding_drops_branches_on_constant_clash():
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, ("c",)),), (Atom(A, (X,)),)),
            Rule((goal_atom(X),), (Atom(P, (X,)), Atom(EDGE, (X, "d")))),
        ]
    )
    unfolding = unfold_to_ucq(program)
    assert unfolding is not None
    # the only definition pins x = "c"; the disjunct survives with x bound
    assert len(unfolding.goal_disjuncts) == 1
    assert unfolding.goal_disjuncts[0].answer_terms == ("c",)
    instance = Instance([Fact(A, (9,)), Fact(EDGE, ("c", "d"))])
    assert (
        evaluate(program, instance)
        == evaluate(program, instance, force_tier=TIER_GROUND_SAT)
        == frozenset({("c",)})
    )
    clashing = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, ("c",)),), (Atom(A, (X,)),)),
            Rule((goal_atom(X),), (Atom(P, ("e",)), Atom(EDGE, (X, X)))),
        ]
    )
    unfolded = unfold_to_ucq(clashing)
    assert unfolded is not None and unfolded.goal_disjuncts == ()
    assert evaluate(clashing, instance) == evaluate(
        clashing, instance, force_tier=TIER_GROUND_SAT
    )


def test_unfolding_unifies_repeated_head_variables_and_constants():
    two = RelationSymbol("P2", 2)
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(two, (X, X)),), (Atom(A, (X,)),)),
            Rule((Atom(two, (X, "c")),), (Atom(B, (X,)),)),
            Rule((goal_atom(X),), (Atom(two, (X, Y)), Atom(EDGE, (Y, X)))),
        ]
    )
    instance = Instance(
        [
            Fact(A, (1,)),
            Fact(EDGE, (1, 1)),
            Fact(B, (2,)),
            Fact(EDGE, ("c", 2)),
            Fact(A, (3,)),
            Fact(EDGE, (3, 1)),
        ]
    )
    plan = plan_program(program)
    assert plan.tier == TIER_REWRITE
    expected = evaluate(program, instance, force_tier=TIER_GROUND_SAT)
    assert evaluate(program, instance) == expected == frozenset({(1,), (2,)})


def test_unfolding_cap_falls_back_to_fixpoint():
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (X,)),), (Atom(A, (X,)),)),
            Rule((Atom(P, (X,)),), (Atom(B, (X,)),)),
            Rule((goal_atom(X),), tuple(Atom(P, (X,)) for _ in range(2)) + (adom_atom(X),)),
        ]
    )
    assert unfold_to_ucq(program, max_disjuncts=2) is None
    assert unfold_to_ucq(program) is not None
    plan = plan_for_tier(program, TIER_FIXPOINT)
    assert plan.tier == TIER_FIXPOINT


def test_adom_only_variables_and_boolean_goals():
    program = DisjunctiveDatalogProgram(
        [Rule((goal_atom(),), (adom_atom(X),))]
    )
    assert plan_program(program).tier == TIER_REWRITE
    assert evaluate(program, Instance([])) == frozenset()
    instance = Instance([Fact(A, (1,))])
    assert (
        evaluate(program, instance)
        == evaluate(program, instance, force_tier=TIER_GROUND_SAT)
        == frozenset({()})
    )
    unary = DisjunctiveDatalogProgram(
        [Rule((goal_atom(X),), (adom_atom(X), Atom(A, (Y,))))]
    )
    assert plan_program(unary).tier == TIER_REWRITE
    instance = Instance([Fact(A, (1,)), Fact(EDGE, (2, 3))])
    expected = evaluate(unary, instance, force_tier=TIER_GROUND_SAT)
    assert evaluate(unary, instance) == expected
    assert expected == frozenset({(1,), (2,), (3,)})


def test_forced_tier_errors_are_informative():
    disjunctive = csp_to_mddlog(three_colourability_template())
    with pytest.raises(ValueError, match="unsound"):
        plan_for_tier(disjunctive, TIER_REWRITE)
    with pytest.raises(ValueError, match="unsound"):
        plan_for_tier(disjunctive, TIER_FIXPOINT)
    with pytest.raises(ValueError, match="unknown tier"):
        plan_for_tier(disjunctive, 7)
    assert plan_for_tier(disjunctive, TIER_GROUND_SAT).tier == TIER_GROUND_SAT


def test_forcing_tier0_on_recursive_programs_raises():
    """Regression: forcing tier 0 on a recursive program must raise, not
    spin in the unfolder — a pure-IDB cycle (no EDB atom in the loop)
    grows no disjunct, so no unfolding cap would ever trip."""
    pure_cycle = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (X,)),), (Atom(Q, (X,)),)),
            Rule((Atom(Q, (X,)),), (Atom(P, (X,)),)),
            Rule((goal_atom(X),), (Atom(P, (X,)),)),
        ]
    )
    with pytest.raises(ValueError, match="recursive"):
        plan_for_tier(pure_cycle, TIER_REWRITE)
    # the natural plan and forced tier 1 stay available
    assert plan_program(pure_cycle).tier == TIER_FIXPOINT
    instance = Instance([Fact(A, (1,))])
    assert evaluate(pure_cycle, instance) == evaluate(
        pure_cycle, instance, force_tier=TIER_GROUND_SAT
    )


def test_cost_estimates_come_from_index_statistics():
    program = _ucq_rewriting_program()
    plan = plan_program(program)
    hd = RelationSymbol("HasDiagnosis", 2)
    li = RelationSymbol("Listeriosis", 1)
    instance = Instance(
        [Fact(hd, (f"p{i}", f"d{i}")) for i in range(10)]
        + [Fact(li, (f"d{i}",)) for i in range(10)]
    )
    estimate = estimate_cost(plan, instance)
    assert estimate.tier == TIER_REWRITE
    assert estimate.domain_size == 20
    assert estimate.candidates == 20  # unary goal
    assert estimate.join_cost > 0
    assert estimate.describe()["candidates"] == 20
    assert auto_workers(estimate.tier2_work_score) is None  # tiny problem
    assert auto_workers(10**9) >= 1


def test_position_value_count_matches_position_values():
    instance = Instance([Fact(EDGE, (1, 2)), Fact(EDGE, (1, 3)), Fact(EDGE, (2, 3))])
    for position in range(2):
        assert instance.position_value_count(EDGE, position) == len(
            instance.position_values(EDGE, position)
        )
    assert instance.position_value_count(RelationSymbol("nope", 1), 0) == 0


# ---------------------------------------------------------------------------
# Randomized planner-vs-forced-tier cross-validation
# ---------------------------------------------------------------------------


def _random_instance(rng: random.Random, domain) -> Instance:
    facts = []
    for element in domain:
        for symbol in (A, B):
            if rng.random() < 0.5:
                facts.append(Fact(symbol, (element,)))
    for source in domain:
        for target in domain:
            if rng.random() < 0.4:
                facts.append(Fact(EDGE, (source, target)))
    return Instance(facts)


def _random_horn_program(rng: random.Random, goal_arity: int) -> DisjunctiveDatalogProgram:
    """Random disjunction-free programs: chains, optional recursion,
    optional constraints, adom atoms — the tier-0/1 population."""
    rules = [Rule((Atom(P, (X,)),), (Atom(A, (X,)),))]
    if rng.random() < 0.5:
        rules.append(Rule((Atom(P, (Y,)),), (Atom(P, (X,)), Atom(EDGE, (X, Y)))))
    if rng.random() < 0.6:
        rules.append(Rule((Atom(Q, (X,)),), (Atom(P, (X,)), Atom(B, (X,)))))
    else:
        rules.append(Rule((Atom(Q, (X,)),), (Atom(B, (X,)), adom_atom(Y))))
    if rng.random() < 0.4:
        rules.append(Rule((), (Atom(Q, (X,)), Atom(EDGE, (X, X)))))
    goal_body_rel = rng.choice([P, Q])
    if goal_arity == 0:
        rules.append(Rule((goal_atom(),), (Atom(goal_body_rel, (X,)),)))
    else:
        rules.append(Rule((goal_atom(X),), (Atom(goal_body_rel, (X,)),)))
    return DisjunctiveDatalogProgram(rules)


def _naive_certain_answers(program, instance):
    domain = sorted(instance.active_domain, key=repr)
    candidates = list(itertools.product(domain, repeat=program.arity))
    certain = set(candidates)
    for model in models(program, instance):
        goal_tuples = model.tuples(program.goal_relation)
        certain &= {c for c in certain if c in goal_tuples}
        if not certain:
            break
    return frozenset(certain)


@pytest.mark.parametrize("seed", range(25))
def test_forced_tiers_agree_with_model_enumeration(seed):
    """Every sound tier equals the textbook reference on tiny inputs."""
    rng = random.Random(98_000 + seed)
    goal_arity = rng.choice([0, 1])
    program = _random_horn_program(rng, goal_arity)
    instance = _random_instance(rng, [1, 2])
    expected = _naive_certain_answers(program, instance)
    assert evaluate(program, instance) == expected
    for tier in (TIER_REWRITE, TIER_FIXPOINT, TIER_GROUND_SAT):
        try:
            plan_for_tier(program, tier)
        except ValueError:
            continue
        assert evaluate(program, instance, force_tier=tier) == expected, tier


@pytest.mark.parametrize("seed", range(15))
def test_forced_tiers_agree_on_larger_instances(seed):
    rng = random.Random(99_000 + seed)
    goal_arity = rng.choice([0, 1])
    program = _random_horn_program(rng, goal_arity)
    instance = _random_instance(rng, list(range(1, 6)))
    reference = evaluate(program, instance, force_tier=TIER_GROUND_SAT)
    assert evaluate(program, instance) == reference
    for tier in (TIER_REWRITE, TIER_FIXPOINT):
        try:
            plan_for_tier(program, tier)
        except ValueError:
            continue
        assert evaluate(program, instance, force_tier=tier) == reference, tier


def test_vacuous_certainty_parity_across_tiers():
    """A fired constraint makes every adom tuple certain — identically in
    the UCQ, fixpoint and ground tiers, one-shot and in sessions."""
    program = DisjunctiveDatalogProgram(
        [
            Rule((), (Atom(A, (X,)),)),
            Rule((goal_atom(X),), (Atom(B, (X,)),)),
        ]
    )
    instance = Instance([Fact(A, (1,)), Fact(EDGE, (2, 3))])
    expected = frozenset({(1,), (2,), (3,)})
    for tier in (TIER_REWRITE, TIER_FIXPOINT, TIER_GROUND_SAT):
        assert evaluate(program, instance, force_tier=tier) == expected, tier
    for tier in (None, TIER_REWRITE, TIER_FIXPOINT, TIER_GROUND_SAT):
        session = ObdaSession(program, force_tier=tier)
        session.insert_facts(instance.facts)
        assert not session.is_consistent()
        assert session.certain_answers() == expected, tier
        batch = session.answer_batch([(1,), ("ghost",)])
        assert batch == {(1,): True, ("ghost",): False}, tier


# ---------------------------------------------------------------------------
# Serving sessions route through the planner
# ---------------------------------------------------------------------------


def test_session_states_match_plan_tiers():
    session = ObdaSession(
        {
            "ucq": _ucq_rewriting_program(),
            "fixpoint": _rewriting_program(),
            "sat": csp_to_mddlog(three_colourability_template()),
        }
    )
    assert isinstance(session._state("ucq"), _UcqState)
    assert isinstance(session._state("fixpoint"), _FixpointState)
    assert isinstance(session._state("sat"), _SatState)
    explain = session.explain()
    assert explain["schema"] == "obda-explain/v2"
    queries = explain["queries"]
    assert queries["ucq"]["tier"] == TIER_REWRITE
    assert queries["fixpoint"]["tier"] == TIER_FIXPOINT
    assert queries["sat"]["tier"] == TIER_GROUND_SAT
    assert session.plan("ucq").tier_name == "ucq-rewrite"


def test_session_force_tier_overrides_routing():
    program = _ucq_rewriting_program()
    session = ObdaSession(program, force_tier=TIER_GROUND_SAT)
    assert isinstance(session._state(None), _SatState)
    with pytest.raises(ValueError):
        ObdaSession(
            csp_to_mddlog(three_colourability_template()), force_tier=TIER_REWRITE
        )


@pytest.mark.parametrize("seed", range(8))
def test_tier0_session_streams_match_from_scratch(seed):
    """Insert/delete/query streams against the stateless UCQ state equal
    ground-and-solve from scratch after every epoch."""
    from repro.engine import ground_program

    rng = random.Random(77_000 + seed)
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (X,)),), (Atom(A, (X,)),)),
            Rule((Atom(Q, (X,)),), (Atom(P, (X,)), Atom(EDGE, (X, Y)))),
            Rule((goal_atom(X),), (Atom(Q, (X,)),)),
        ]
    )
    session = ObdaSession(program)
    assert isinstance(session._state(None), _UcqState)
    universe = [Fact(A, (e,)) for e in [1, 2, 3]] + [
        Fact(EDGE, (a, b)) for a in [1, 2, 3] for b in [1, 2, 3]
    ]
    live: set[Fact] = set()
    for _ in range(20):
        free = [f for f in universe if f not in live]
        if free and (not live or rng.random() < 0.6):
            batch = rng.sample(free, min(len(free), rng.randint(1, 3)))
            live.update(batch)
            session.insert_facts(batch)
        else:
            batch = rng.sample(sorted(live, key=str), min(len(live), rng.randint(1, 2)))
            live.difference_update(batch)
            session.delete_facts(batch)
        expected = ground_program(program, session.instance).certain_answers()
        assert session.certain_answers() == expected
        for candidate in [(1,), (2,), ("ghost",)]:
            assert session.is_certain(candidate) == (candidate in expected)


def test_sharded_session_exposes_plans():
    program = _ucq_rewriting_program()
    sharded = ShardedObdaSession(program, shards=2)
    assert sharded.plan().tier == TIER_REWRITE
    assert sharded.explain()["queries"][next(iter(sharded.query_names))]["tier"] == TIER_REWRITE
    hd = RelationSymbol("HasDiagnosis", 2)
    li = RelationSymbol("Listeriosis", 1)
    facts = [Fact(hd, (f"p{i}", f"d{i}")) for i in range(6)] + [
        Fact(li, (f"d{i}",)) for i in range(0, 6, 2)
    ]
    sharded.insert_facts(facts)
    single = ObdaSession(program, initial_facts=facts)
    assert sharded.certain_answers() == single.certain_answers()


# ---------------------------------------------------------------------------
# OMQ layer: the planned engine and workload planning
# ---------------------------------------------------------------------------


def test_planned_engine_matches_auto_on_medical():
    omq = example_2_1_omq()
    instance = patient_instance()
    auto = certain_answers(omq, instance, engine="auto")
    planned = certain_answers(omq, instance, engine="planned")
    assert planned == auto == frozenset({("patient1",), ("patient2",)})


def test_planned_engine_falls_back_without_mddlog_translation():
    """Functional roles have no complete MDDlog translation; the planned
    engine must fall back to the auto selection instead of failing."""
    omq = OntologyMediatedQuery(
        ontology=Ontology([FunctionalRole(Role("r"))]),
        query=atomic_query("A"),
    )
    instance = Instance([Fact(A, ("a",))])
    assert certain_answers(omq, instance, engine="planned") == certain_answers(
        omq, instance, engine="auto"
    )


def test_plan_omq_workload_reports_tiers():
    plans = plan_omq_workload(
        {
            "q1_rewritten": _ucq_rewriting_program(),
            "q2_rewriting": _rewriting_program(),
            "q1_compiled": example_2_1_omq(),
        }
    )
    assert plans["q1_rewritten"].tier == TIER_REWRITE
    assert plans["q2_rewriting"].tier == TIER_FIXPOINT
    assert plans["q1_compiled"].tier == TIER_GROUND_SAT
    single = plan_omq_workload(_rewriting_program())
    assert single["q"].tier == TIER_FIXPOINT


def test_serve_omq_workload_sessions_are_planned():
    session = serve_omq_workload(_ucq_rewriting_program())
    assert session.plan().tier == TIER_REWRITE
    sharded = serve_omq_workload(_rewriting_program(), shards=2)
    assert sharded.plan().tier == TIER_FIXPOINT


def test_evaluate_accepts_auto_parallel():
    program = csp_to_mddlog(three_colourability_template())
    instance = Instance([Fact(EDGE, (1, 2)), Fact(EDGE, (2, 3)), Fact(EDGE, (3, 1))])
    assert evaluate(program, instance, parallel="auto") == evaluate(program, instance)
