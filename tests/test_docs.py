"""Documentation health: links resolve, fences exist where expected.

The expensive part — executing every ```python fence in a subprocess — is
CI's dedicated docs job (``python tools/check_docs.py``); here the cheap
invariants run with the tier-1 suite so a broken link or a vanished doc
fails fast everywhere.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from check_docs import check_links, fence_files, iter_fences, link_files  # noqa: E402


def test_required_docs_exist():
    names = {path.name for path in link_files()}
    assert "README.md" in names
    assert "planner.md" in names
    assert "ARCHITECTURE.md" in names
    for path in link_files():
        assert path.exists(), path


def test_intra_repo_links_resolve():
    assert check_links(link_files()) == []


def test_docs_carry_runnable_python_fences():
    """README and the planner guide each ship at least one python fence
    (the docs CI job executes them; an accidental de-fencing would
    silently skip that coverage)."""
    by_file = {
        path.name: [
            language for _line, language, _code in iter_fences(path)
        ].count("python")
        for path in fence_files()
    }
    assert by_file.get("README.md", 0) >= 2
    assert by_file.get("planner.md", 0) >= 2
