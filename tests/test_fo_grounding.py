"""Tests for the finite-domain grounding and propositional search used by the
bounded certain-answer engines."""

from hypothesis import given, settings, strategies as st

from repro.core import Fact, Instance, RelationSymbol
from repro.core.cq import Atom, ConjunctiveQuery, UnionOfConjunctiveQueries, var
from repro.fo.formulas import RelationalAtom, exists, forall
from repro.fo.grounding import (
    ground,
    ground_cq,
    ground_ucq,
    model_from_assignment,
    satisfying_assignment,
)

EDGE = RelationSymbol("edge", 2)
MARK = RelationSymbol("mark", 1)
x, y = var("x"), var("y")


def test_ground_atomic_and_boolean_cases():
    formula = RelationalAtom(MARK, (x,))
    grounded = ground(formula, ["a"], {x: "a"})
    assert grounded == ("lit", Fact(MARK, ("a",)), True)
    negated = ground(formula, ["a"], {x: "a"}, positive=False)
    assert negated == ("lit", Fact(MARK, ("a",)), False)


def test_ground_quantifiers_expand_over_domain():
    formula = exists([x], RelationalAtom(MARK, (x,)))
    grounded = ground(formula, ["a", "b"])
    assert grounded[0] == "or"
    assert len(grounded[1]) == 2
    universal = forall([x], RelationalAtom(MARK, (x,)))
    grounded_universal = ground(universal, ["a", "b"])
    assert grounded_universal[0] == "and"


def test_satisfying_assignment_simple_constraints():
    sentence = forall(
        [x, y], RelationalAtom(EDGE, (x, y)).implies(RelationalAtom(MARK, (y,)))
    )
    domain = ["a", "b"]
    constraint = ground(sentence, domain)
    forced = {Fact(EDGE, ("a", "b")): True, Fact(MARK, ("b",)): False}
    assert satisfying_assignment([constraint], forced) is None
    forced_ok = {Fact(EDGE, ("a", "b")): True}
    assignment = satisfying_assignment([constraint], forced_ok)
    assert assignment is not None
    assert assignment[Fact(MARK, ("b",))] is True


def test_ground_ucq_negation_blocks_answers():
    query = UnionOfConjunctiveQueries(
        [ConjunctiveQuery((x,), [Atom(EDGE, (x, y)), Atom(MARK, (y,))])]
    )
    domain = ["a", "b"]
    negated = ground_ucq(query, domain, ("a",), positive=False)
    forced = {Fact(EDGE, ("a", "b")): True, Fact(MARK, ("b",)): True}
    assert satisfying_assignment([negated], forced) is None
    assert satisfying_assignment([negated], {Fact(EDGE, ("a", "b")): True}) is not None


def test_model_from_assignment_extends_base():
    base = Instance([Fact(MARK, ("a",))])
    assignment = {Fact(EDGE, ("a", "a")): True, Fact(MARK, ("b",)): False}
    model = model_from_assignment(assignment, base)
    assert Fact(EDGE, ("a", "a")) in model
    assert Fact(MARK, ("b",)) not in model
    assert Fact(MARK, ("a",)) in model


def test_ground_cq_boolean_query():
    query = ConjunctiveQuery((), [Atom(EDGE, (x, x))])
    grounded = ground_cq(query, ["a", "b"], ())
    assert grounded[0] == "or"
    assert ("lit", Fact(EDGE, ("a", "a")), True) in grounded[1]


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.sampled_from("abc"), st.sampled_from("abc")), max_size=4
    )
)
def test_grounded_sentence_agrees_with_direct_fo_evaluation(edges):
    """Property: satisfiability with *all* facts forced (positively or negatively)
    coincides with direct FO model checking of the sentence."""
    instance = Instance([Fact(EDGE, pair) for pair in edges] + [Fact(MARK, ("a",))])
    sentence = forall(
        [x, y], RelationalAtom(EDGE, (x, y)).implies(RelationalAtom(MARK, (x,)))
    )
    domain = sorted(instance.active_domain, key=repr)
    constraint = ground(sentence, domain)
    # Force every possible fact to its truth value in the instance.
    forced = {}
    import itertools

    for symbol in (EDGE, MARK):
        for args in itertools.product(domain, repeat=symbol.arity):
            fact = Fact(symbol, args)
            forced[fact] = fact in instance
    satisfiable = satisfying_assignment([constraint], forced) is not None
    assert satisfiable == sentence.evaluate(instance)
