"""Tests for the workload generators: counting instances, 2QBF reduction,
separating families, tiling problems and the CSP zoo."""

from repro.core import has_homomorphism
from repro.datalog import evaluate_boolean
from repro.workloads.counting import (
    alci_length_query,
    counting_instance,
    inverse_free_length_query,
    path_detection_cq,
    succinctness_measurements,
)
from repro.workloads.csp_zoo import ZOO, cycle_graph, random_graph
from repro.workloads.qbf import TwoQbf, qbf_instance, qbf_program, random_qbf
from repro.workloads.separations import (
    functional_ok_instance,
    functional_role_omq,
    functional_violation_instance,
    gfo_d0,
    gfo_d1,
    gfo_query_holds,
    transitive_d0,
    transitive_d1,
)
from repro.workloads.tiling import (
    checkerboard_tiling,
    solvable_tiling,
    unsolvable_tiling,
)


# -- Figure 1 / Theorem 3.7 --------------------------------------------------------------


def test_counting_instance_shape():
    instance = counting_instance(3)
    # Figure 1: elements a0..a6, six R-facts, markers Y0 Y1 Y2 Y0.
    assert len(instance.active_domain) == 7
    assert len(instance.tuples("R")) == 6
    assert ("a0",) in instance.tuples("Y0")
    assert ("a6",) in instance.tuples("Y0")


def test_path_detection_cq_monotone_in_length():
    query = path_detection_cq(2)
    assert query.holds_in(counting_instance(2))
    assert query.holds_in(counting_instance(4))
    assert not query.holds_in(counting_instance(1))


def test_succinctness_gap_shape():
    """The inverse-free family grows much faster than the ALCI family — the
    shape of the Theorem 3.7 succinctness gap."""
    rows = succinctness_measurements(5)
    alci_growth = rows[-1]["alci_size"] - rows[0]["alci_size"]
    plain_growth = rows[-1]["inverse_free_size"] - rows[0]["inverse_free_size"]
    assert plain_growth > alci_growth
    assert all(row["alci_size"] < row["inverse_free_size"] * 2 for row in rows)


def test_alci_query_uses_inverse_roles():
    omq = alci_length_query(3)
    assert omq.ontology.uses_inverse_roles()
    assert not inverse_free_length_query(3).ontology.uses_inverse_roles()


# -- Theorem 3.1: 2QBF reduction -----------------------------------------------------------


def test_qbf_validity_bruteforce():
    # ∀x ∃y (x ∨ y) ∧ (¬x ∨ ¬y) is valid (choose y = ¬x).
    valid = TwoQbf(1, 1, (((0, True), (1, True), (1, True)), ((0, False), (1, False), (1, False))))
    assert valid.is_valid()
    # ∀x ∃y (x ∨ x ∨ x) is not valid (fails for x = false).
    invalid = TwoQbf(1, 1, (((0, True), (0, True), (0, True)),))
    assert not invalid.is_valid()


def test_qbf_reduction_matches_validity():
    cases = [
        TwoQbf(1, 1, (((0, True), (1, True), (1, True)), ((0, False), (1, False), (1, False)))),
        TwoQbf(1, 1, (((0, True), (0, True), (0, True)),)),
        TwoQbf(2, 1, (((0, True), (1, True), (2, True)),)),
    ]
    for qbf in cases:
        program = qbf_program(qbf)
        instance = qbf_instance(qbf)
        assert evaluate_boolean(program, instance) == qbf.is_valid(), qbf


def test_random_qbf_reduction_round_trip():
    for seed in range(3):
        qbf = random_qbf(1, 2, 2, seed=seed)
        program = qbf_program(qbf)
        instance = qbf_instance(qbf)
        assert evaluate_boolean(program, instance) == qbf.is_valid()


# -- Theorem 3.10 / Proposition 3.15 separations --------------------------------------------


def test_transitive_separation_instances():
    """Q(D1) = 1 and Q(D0) = 0 for the transitive-role query of Theorem 3.10,
    checked via reachability."""
    import networkx as nx

    def query_holds(instance):
        r_graph = nx.DiGraph(list(instance.tuples("R")))
        s_graph = nx.DiGraph(list(instance.tuples("S")))
        for a in instance.active_domain:
            for b in instance.active_domain:
                if a == b:
                    continue
                if (
                    r_graph.has_node(a)
                    and r_graph.has_node(b)
                    and nx.has_path(r_graph, a, b)
                    and s_graph.has_node(a)
                    and s_graph.has_node(b)
                    and nx.has_path(s_graph, a, b)
                ):
                    return True
        return False

    assert query_holds(transitive_d1(3))
    assert not query_holds(transitive_d0(3, 4))


def test_gfo_separation_instances():
    assert gfo_query_holds(gfo_d1(4))
    assert not gfo_query_holds(gfo_d0(4))


def test_functional_role_query_not_preserved_under_homomorphisms():
    violation = functional_violation_instance()
    fine = functional_ok_instance()
    assert has_homomorphism(violation, fine)
    omq = functional_role_omq()
    assert ("a",) in omq.certain_answers(violation, engine="bounded")
    assert ("a",) not in omq.certain_answers(fine, engine="bounded")


# -- tiling problems (Theorems 5.7 / 5.16 inputs) ---------------------------------------------


def test_tiling_solver():
    assert solvable_tiling(1).has_solution()
    assert checkerboard_tiling(1).has_solution()
    assert not unsolvable_tiling(1).has_solution()


def test_tiling_solution_is_verified():
    problem = checkerboard_tiling(1)
    solution = problem.solve()
    assert solution is not None
    assert problem.is_solution(solution)


# -- the CSP zoo -------------------------------------------------------------------------------


def test_zoo_templates_have_declared_schemas():
    for name, entry in ZOO.items():
        template = entry["template"]()
        assert template.active_domain, name


def test_random_graph_generator_is_deterministic():
    assert random_graph(4, 0.5, seed=1) == random_graph(4, 0.5, seed=1)
    assert cycle_graph(4).tuples("edge")
