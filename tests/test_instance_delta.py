"""Delta-copied instance indexes stay equal to from-scratch construction.

``with_facts`` / ``without_facts`` share or incrementally update the
parent's per-relation / per-position / per-constant indexes; these tests
drive randomized add/remove chains and assert every observable — fact set,
schema, active domain and all three indexes — matches a freshly built
instance at every step.
"""

import random

import pytest

from repro.core import Fact, Instance, RelationSymbol

A = RelationSymbol("A", 1)
R = RelationSymbol("R", 2)
T = RelationSymbol("T", 3)
SYMBOLS = (A, R, T)


def _universe(domain):
    facts = [Fact(A, (e,)) for e in domain]
    facts += [Fact(R, (x, y)) for x in domain for y in domain]
    facts += [Fact(T, (x, y, x)) for x in domain for y in domain]
    return facts


def _assert_equivalent(instance: Instance, facts: set) -> None:
    reference = Instance(facts)
    assert instance == reference
    assert instance.active_domain == reference.active_domain
    # the delta chain's schema may additionally preserve emptied relations,
    # but must cover every populated one
    assert set(reference.schema) <= set(instance.schema)
    assert set(instance.schema) <= set(SYMBOLS)
    for symbol in SYMBOLS:
        assert instance.tuples(symbol) == reference.tuples(symbol)
        rows = reference.tuples(symbol)
        for position in range(symbol.arity):
            values = {row[position] for row in rows}
            assert instance.position_values(symbol, position) == values
            for value in values:
                assert instance.tuples_with(symbol, position, value) == frozenset(
                    row for row in rows if row[position] == value
                )
    for constant in list(instance.active_domain) + ["missing"]:
        assert instance.facts_with_constant(constant) == frozenset(
            f for f in facts if constant in f.arguments
        )


@pytest.mark.parametrize("seed", range(10))
def test_delta_chain_matches_from_scratch(seed):
    rng = random.Random(seed)
    universe = _universe([1, 2, 3])
    instance = Instance([])
    live: set = set()
    for _step in range(30):
        # exercise both cold and warm index paths: sometimes touch the
        # indexes before updating so the delta copy has something to carry
        if rng.random() < 0.5:
            instance.facts_with_constant(1)
            instance.tuples_with(R, 0, 1)
        free = [f for f in universe if f not in live]
        if free and (not live or rng.random() < 0.6):
            batch = rng.sample(free, min(len(free), rng.randint(1, 4)))
            live.update(batch)
            instance = instance.with_facts(batch)
        else:
            batch = rng.sample(
                sorted(live, key=str), min(len(live), rng.randint(1, 4))
            )
            live.difference_update(batch)
            instance = instance.without_facts(batch)
        _assert_equivalent(instance, live)


def test_with_facts_noop_returns_self():
    instance = Instance([Fact(A, (1,))])
    assert instance.with_facts([Fact(A, (1,))]) is instance
    assert instance.without_facts([Fact(A, (2,))]) is instance


def test_schema_survives_emptying_a_relation():
    """Regression: deleting the last fact of a relation used to re-infer the
    schema from the remaining relations, so a compiled session/query that
    still mentioned the emptied relation could no longer resolve it by name.
    The parent schema is preserved across deletions now."""
    instance = Instance([Fact(A, (1,)), Fact(R, (1, 2))])
    shrunk = instance.without_facts([Fact(R, (1, 2))])
    assert set(shrunk.schema) == {A, R}
    assert shrunk.tuples("R") == frozenset()
    assert shrunk.tuples_with("R", 0, 1) == frozenset()
    grown = shrunk.with_facts([Fact(T, (1, 1, 1))])
    assert set(grown.schema) == {A, R, T}


def test_delete_to_empty_then_reinsert_round_trips():
    """Empty a relation, then bring it back: every index and the schema must
    behave exactly like a fresh instance with the same facts."""
    fact = Fact(R, (1, 2))
    instance = Instance([Fact(A, (1,)), fact])
    emptied = instance.without_facts([fact])
    refilled = emptied.with_facts([fact])
    assert refilled == instance
    assert refilled.tuples(R) == frozenset({(1, 2)})
    assert refilled.tuples("R") == frozenset({(1, 2)})
    assert refilled.tuples_with(R, 1, 2) == frozenset({(1, 2)})
    assert refilled.active_domain == frozenset({1, 2})
    assert set(refilled.schema) == {A, R}
    # repeated empty/refill cycles stay stable
    again = refilled.without_facts([fact]).with_facts([fact])
    assert again == instance and set(again.schema) == {A, R}


def test_domain_shrinks_only_when_last_mention_goes():
    instance = Instance([Fact(R, (1, 2)), Fact(A, (2,))])
    after = instance.without_facts([Fact(R, (1, 2))])
    assert after.active_domain == frozenset({2})
    assert instance.active_domain == frozenset({1, 2})  # parent untouched


def test_position_index_shared_for_untouched_relations():
    instance = Instance([Fact(A, (1,)), Fact(R, (1, 2))])
    # build the parent's position index for both relations
    instance.tuples_with(A, 0, 1)
    instance.tuples_with(R, 0, 1)
    child = instance.with_facts([Fact(R, (2, 1))])
    # untouched relation shares the parent's index object; touched rebuilt
    assert child._position_view[A] is instance._position_view[A]
    assert R not in child._position_view
    assert child.tuples_with(R, 1, 1) == frozenset({(2, 1)})


def test_interner_shared_across_delta_copies():
    instance = Instance([Fact(A, (1,)), Fact(R, (1, 2))])
    child = instance.with_facts([Fact(R, (2, 3))])
    grandchild = child.without_facts([Fact(A, (1,))])
    assert child.interner is instance.interner
    assert grandchild.interner is instance.interner
    # untouched relation shares the parent's columnar store, buckets included
    assert child.column(A) is instance.column(A)
    assert grandchild.column(R) is child.column(R)


def test_union_still_infers_schema():
    left = Instance([Fact(A, (1,))])
    right = Instance([Fact(R, (1, 2))])
    union = left | right
    assert set(union.schema) == {A, R}
    assert union.facts == left.facts | right.facts


@pytest.mark.parametrize("seed", range(5))
def test_union_across_interners_matches_fact_union(seed):
    """Union of unrelated instances (distinct interners — the shard-merge
    shape) equals from-scratch construction on every observable."""
    rng = random.Random(40 + seed)
    universe = _universe([1, 2, 3, "x"])
    left_facts = set(rng.sample(universe, rng.randint(0, len(universe))))
    right_facts = set(rng.sample(universe, rng.randint(0, len(universe))))
    left, right = Instance(left_facts), Instance(right_facts)
    _assert_equivalent(left | right, left_facts | right_facts)
    _assert_equivalent(
        Instance.merge([left, right], extra_facts=[Fact(A, ("extra",))]),
        left_facts | right_facts | {Fact(A, ("extra",))},
    )


def test_union_of_delta_siblings_shares_the_interner():
    """Delta copies of one ancestor union in code space — no translation,
    and the result stays in the family (same interner, shared columns)."""
    base = Instance([Fact(A, (1,)), Fact(R, (1, 2))])
    left = base.with_facts([Fact(A, (2,))])
    right = base.with_facts([Fact(R, (2, 3))])
    union = left | right
    assert union.interner is base.interner
    assert union.facts == left.facts | right.facts
    # a relation the right operand adds nothing to keeps the left operand's
    # column object (``with_rows`` returns self on no-ops)
    assert union.column(A) is left.column(A)


def test_rename_collapses_and_relabels():
    instance = Instance([Fact(A, (1,)), Fact(A, (2,)), Fact(R, (1, 2))])
    renamed = instance.rename({1: "one", 2: "one"})  # non-injective is fine
    assert renamed.facts == frozenset(
        {Fact(A, ("one",)), Fact(R, ("one", "one"))}
    )
    assert renamed.active_domain == frozenset({"one"})
    assert renamed.tuples_with(R, 0, "one") == frozenset({("one", "one")})
    assert instance.facts == frozenset(  # source untouched
        {Fact(A, (1,)), Fact(A, (2,)), Fact(R, (1, 2))}
    )


def test_disjoint_union_tags_both_sides():
    left = Instance([Fact(A, (1,))])
    right = Instance([Fact(A, (1,)), Fact(R, (1, 2))])
    disjoint = left.disjoint_union(right)
    assert disjoint.facts == frozenset(
        {
            Fact(A, ((0, 1),)),
            Fact(A, ((1, 1),)),
            Fact(R, ((1, 1), (1, 2))),
        }
    )
    assert len(disjoint.active_domain) == 3


def test_union_after_delete_to_empty_keeps_the_schema():
    """Regression companion to the PR 3 schema case: a union whose left
    operand emptied a relation must still resolve that relation by name."""
    emptied = Instance([Fact(A, (1,)), Fact(R, (1, 2))]).without_facts(
        [Fact(R, (1, 2))]
    )
    union = emptied | Instance([Fact(T, (1, 1, 1))])
    assert set(union.schema) == {A, R, T}
    assert union.tuples("R") == frozenset()
    refilled = union.with_facts([Fact(R, (9, 9))])
    assert refilled.tuples("R") == frozenset({(9, 9)})
