"""Tests for conjunctive queries, UCQs, fork elimination and tree(q)."""

import pytest

from repro.core import (
    Atom,
    ConjunctiveQuery,
    Fact,
    Instance,
    RelationSymbol,
    UnionOfConjunctiveQueries,
    atomic_query,
    boolean_atomic_query,
    eliminate_forks,
    is_atomic_query,
    is_boolean_atomic_query,
    is_tree_shaped,
    tree_queries,
    tree_root,
    var,
    vars_,
)

R = RelationSymbol("R", 2)
S = RelationSymbol("S", 2)
P = RelationSymbol("P", 2)
A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)


def test_cq_evaluation_on_instance():
    x, y = vars_("x", "y")
    query = ConjunctiveQuery((x,), [Atom(R, (x, y)), Atom(A, (y,))])
    data = Instance([Fact(R, (1, 2)), Fact(A, (2,)), Fact(R, (3, 4))])
    assert query.evaluate(data) == {(1,)}
    assert query.holds_in(data, (1,))
    assert not query.holds_in(data, (3,))


def test_boolean_cq_evaluation():
    x, y = vars_("x", "y")
    query = ConjunctiveQuery((), [Atom(R, (x, y)), Atom(R, (y, x))])
    assert not query.holds_in(Instance([Fact(R, (1, 2))]))
    assert query.holds_in(Instance([Fact(R, (1, 2)), Fact(R, (2, 1))]))


def test_answer_variable_must_occur():
    with pytest.raises(ValueError):
        ConjunctiveQuery((var("x"),), [Atom(A, (var("y"),))])


def test_ucq_requires_same_arity():
    with pytest.raises(ValueError):
        UnionOfConjunctiveQueries([atomic_query("A"), boolean_atomic_query("B")])


def test_ucq_evaluation_is_union():
    data = Instance([Fact(A, (1,)), Fact(B, (2,))])
    ucq = UnionOfConjunctiveQueries([atomic_query("A"), atomic_query("B")])
    assert ucq.evaluate(data) == {(1,), (2,)}


def test_atomic_query_recognisers():
    assert is_atomic_query(atomic_query("A"))
    assert is_boolean_atomic_query(boolean_atomic_query("A"))
    x, y = vars_("x", "y")
    assert not is_atomic_query(ConjunctiveQuery((x,), [Atom(R, (x, y))]))


def test_connected_components_split():
    x, y, z, w = vars_("x", "y", "z", "w")
    query = ConjunctiveQuery((x,), [Atom(R, (x, y)), Atom(R, (z, w))])
    components = query.connected_components()
    assert len(components) == 2
    assert not query.is_connected()


def test_fork_elimination_merges_same_role_sources():
    # The worked example from the proof of Theorem 3.3.
    y = {i: var(f"y{i}") for i in range(1, 9)}
    query = ConjunctiveQuery(
        (),
        [
            Atom(P, (y[1], y[2])),
            Atom(S, (y[1], y[3])),
            Atom(R, (y[2], y[4])),
            Atom(R, (y[3], y[4])),
            Atom(S, (y[4], y[5])),
            Atom(R, (y[6], y[7])),
            Atom(S, (y[6], y[8])),
        ],
    )
    reduced = eliminate_forks(query)
    # y2 and y3 are identified, so the query loses exactly one variable.
    assert len(reduced.variables) == len(query.variables) - 1


def test_tree_shape_detection():
    x, y, z = vars_("x", "y", "z")
    tree = ConjunctiveQuery((), [Atom(R, (x, y)), Atom(S, (x, z))])
    assert is_tree_shaped(tree)
    assert tree_root(tree) == x
    cycle = ConjunctiveQuery((), [Atom(R, (x, y)), Atom(R, (y, x))])
    assert not is_tree_shaped(cycle)
    multi_edge = ConjunctiveQuery((), [Atom(R, (x, y)), Atom(S, (x, y))])
    assert not is_tree_shaped(multi_edge)


def test_tree_queries_of_theorem_3_3_example():
    y = {i: var(f"y{i}") for i in range(1, 9)}
    query = ConjunctiveQuery(
        (),
        [
            Atom(P, (y[1], y[2])),
            Atom(S, (y[1], y[3])),
            Atom(R, (y[2], y[4])),
            Atom(R, (y[3], y[4])),
            Atom(S, (y[4], y[5])),
            Atom(R, (y[6], y[7])),
            Atom(S, (y[6], y[8])),
        ],
    )
    members = tree_queries(query)
    # The paper lists five members: the detached component {R(y6,y7), S(y6,y8)}
    # and four rooted subqueries.
    boolean_members = [m for m in members if m.arity == 0]
    rooted_members = [m for m in members if m.arity == 1]
    assert len(boolean_members) == 1
    assert len(rooted_members) == 4
    assert len(members) <= query.size()


def test_tree_queries_of_atomic_query_are_empty():
    assert tree_queries(atomic_query("A")) == []


def test_query_size_and_width():
    x, y = vars_("x", "y")
    query = ConjunctiveQuery((x,), [Atom(R, (x, y)), Atom(A, (y,))])
    assert query.width() == 2
    assert query.size() > 0
