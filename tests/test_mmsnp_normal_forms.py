"""Tests for MMSNP normal forms and containment (Prop. 4.1 conditions,
Prop. 5.2 sentence encoding, Prop. 5.5 / Thm 5.6 containment)."""

import pytest

from repro.core import Fact, Instance, RelationSymbol
from repro.core.cq import var
from repro.mmsnp import (
    CoMMSNPQuery,
    EqualityAtom,
    Implication,
    MMSNPFormula,
    SchemaAtom,
    SOAtom,
    SOVariable,
    comsnp_contained_in,
    containment_counterexample,
    eliminate_equalities,
    formula_to_sentence,
    formulas_equivalent_bounded,
    marked_expansion,
    reduce_to_sentence_containment,
    saturate_free_variables,
    suggested_domain_size,
)
from repro.workloads.csp_zoo import EDGE, cycle_graph

X = SOVariable("X", 1)
x, y, z = var("x"), var("y"), var("z")


def two_colourability_formula() -> MMSNPFormula:
    """2-colourability as an MMSNP sentence (fails exactly on non-bipartite graphs)."""
    return MMSNPFormula(
        [X],
        [
            Implication(
                (SchemaAtom(EDGE, (x, y)), SOAtom(X, (x,)), SOAtom(X, (y,))), ()
            ),
            Implication(
                (SchemaAtom(EDGE, (x, y)),), (SOAtom(X, (x,)), SOAtom(X, (y,)))
            ),
        ],
        [],
    )


def reachability_formula() -> MMSNPFormula:
    """Unary formula: false at d exactly when d reaches a ``Mark``-element."""
    mark = RelationSymbol("Mark", 1)
    free = var("d")
    return MMSNPFormula(
        [X],
        [
            Implication((EqualityAtom(free, free),), (SOAtom(X, (free,)),)),
            Implication((SOAtom(X, (x,)), SchemaAtom(EDGE, (x, y))), (SOAtom(X, (y,)),)),
            Implication((SOAtom(X, (x,)), SchemaAtom(mark, (x,))), ()),
        ],
        [free],
    )


# -- sentence semantics ----------------------------------------------------------------


def test_two_colourability_formula_on_cycles():
    formula = two_colourability_formula()
    assert formula.holds(cycle_graph(4))
    assert not formula.holds(cycle_graph(3))
    query = CoMMSNPQuery(formula)
    assert query.evaluate(cycle_graph(3)) == frozenset({()})
    assert query.evaluate(cycle_graph(4)) == frozenset()


def test_empty_instance_satisfies_sentences():
    assert two_colourability_formula().holds(Instance([]))


# -- equality elimination ---------------------------------------------------------------


def test_eliminate_equalities_identifies_variables():
    formula = MMSNPFormula(
        [X],
        [
            Implication(
                (SchemaAtom(EDGE, (x, y)), EqualityAtom(x, y), SOAtom(X, (x,))), ()
            )
        ],
        [],
    )
    simplified = eliminate_equalities(formula)
    for implication in simplified.implications:
        assert not any(isinstance(a, EqualityAtom) for a in implication.body)
    loop = Instance([Fact(EDGE, ("a", "a"))])
    edge = Instance([Fact(EDGE, ("a", "b"))])
    for instance in (loop, edge):
        assert formula.holds(instance) == simplified.holds(instance)


def test_saturate_free_variables_preserves_semantics():
    formula = reachability_formula()
    saturated = saturate_free_variables(formula)
    mark = RelationSymbol("Mark", 1)
    data = Instance(
        [Fact(EDGE, ("a", "b")), Fact(EDGE, ("b", "c")), Fact(mark, ("c",))]
    )
    for element in sorted(data.active_domain):
        assert formula.holds(data, (element,)) == saturated.holds(data, (element,))
    for implication in saturated.implications:
        assert any(
            not isinstance(atom, EqualityAtom) and var("d") in atom.arguments
            for atom in list(implication.body) + list(implication.head)
        )


# -- Proposition 5.2: formulas as sentences over marked expansions ------------------------


def test_formula_to_sentence_matches_on_marked_expansions():
    formula = reachability_formula()
    sentence, markers = formula_to_sentence(formula)
    assert sentence.is_sentence()
    mark = RelationSymbol("Mark", 1)
    data = Instance(
        [Fact(EDGE, ("a", "b")), Fact(EDGE, ("b", "c")), Fact(mark, ("c",))]
    )
    for element in sorted(data.active_domain):
        expanded = marked_expansion(data, (element,), markers)
        assert formula.holds(data, (element,)) == sentence.holds(expanded)


def test_formula_to_sentence_rejects_clashing_markers():
    free = var("d")
    clashing = MMSNPFormula(
        [X],
        [Implication((SchemaAtom(RelationSymbol("P1", 1), (free,)),), ())],
        [free],
    )
    with pytest.raises(ValueError):
        formula_to_sentence(clashing)


# -- containment -------------------------------------------------------------------------


def three_colourability_formula() -> MMSNPFormula:
    x1, x2 = var("x"), var("y")
    red, green, blue = SOVariable("R", 1), SOVariable("G", 1), SOVariable("B", 1)
    implications = [
        Implication(
            (SchemaAtom(EDGE, (x1, x1)),), ()
        ),
        Implication(
            (SchemaAtom(EDGE, (x1, x2)),),
            (SOAtom(red, (x1,)), SOAtom(green, (x1,)), SOAtom(blue, (x1,))),
        ),
        Implication(
            (SchemaAtom(EDGE, (x1, x2)),),
            (SOAtom(red, (x2,)), SOAtom(green, (x2,)), SOAtom(blue, (x2,))),
        ),
    ] + [
        Implication(
            (SchemaAtom(EDGE, (x1, x2)), SOAtom(colour, (x1,)), SOAtom(colour, (x2,))),
            (),
        )
        for colour in (red, green, blue)
    ]
    return MMSNPFormula([red, green, blue], implications, [])


def test_comsnp_containment_two_versus_three_colourability():
    two = two_colourability_formula()
    three = three_colourability_formula()
    # Non-2-colourable is a weaker property than non-3-colourable:
    # coMMSNP(three) ⊆ coMMSNP(two).
    assert comsnp_contained_in(three, two, domain_size=3, max_facts=4)
    witness = containment_counterexample(two, three, domain_size=3, max_facts=4)
    assert witness is not None
    # The triangle is the canonical separating instance.
    assert not three.holds(witness.instance) or not two.holds(witness.instance)


def test_containment_is_reflexive_and_bounded_equivalence():
    two = two_colourability_formula()
    assert comsnp_contained_in(two, two, domain_size=2, max_facts=3)
    assert formulas_equivalent_bounded(two, two, domain_size=2, max_facts=3)


def test_reduce_to_sentence_containment_shapes():
    formula = reachability_formula()
    first, second, markers = reduce_to_sentence_containment(formula, formula)
    assert first.is_sentence() and second.is_sentence()
    assert len(markers) == 1
    assert suggested_domain_size(formula, formula) >= 2


def test_containment_arity_mismatch_rejected():
    with pytest.raises(ValueError):
        comsnp_contained_in(two_colourability_formula(), reachability_formula())
