"""Adaptive re-planning sessions and the unified PlanPolicy API.

Covers the PR's two faces end to end:

* **PlanPolicy** — one frozen object for every planner knob, accepted by
  every public entry point, with the legacy keywords surviving as
  deprecated aliases whose behavior is *identical* (equivalence-tested);
* **adaptive re-planning** — sessions that watch their rolling
  read/insert/delete mix and hot-swap serving tiers, cross-validated on
  randomized mix-flip streams against every sound forced tier (including
  sharded sessions with migrations), with the hysteresis gates pinned so
  the controller can never flap, and warm join-plan caches proven to
  survive the swap.
"""

import random
import warnings

import pytest

from repro.core import Fact, Instance, RelationSymbol
from repro.core.cq import atomic_query
from repro.core.schema import Schema
from repro.datalog import evaluate
from repro.dl import ConceptInclusion, ConceptName, Exists, Ontology, Role
from repro.obda.applications import serve_omq_workload
from repro.omq.certain import compile_to_mddlog
from repro.omq.query import OntologyMediatedQuery
from repro.planner import (
    TIER_FIXPOINT,
    TIER_GROUND_SAT,
    TIER_REWRITE,
    AdaptivePolicy,
    PlanPolicy,
    TierCostModel,
    UnfoldCaps,
    candidate_plans,
    effective_unfold_caps,
    plan_for_tier,
    plan_program,
    static_rates,
)
from repro.planner.analysis import MAX_DISJUNCT_ATOMS, MAX_UNFOLDED_DISJUNCTS
from repro.service import (
    ObdaSession,
    ShardedObdaSession,
    validate_explain,
)
from repro.service.session import _FixpointState, _SatState

HAS_PARENT = RelationSymbol("HasParent", 2)
PREDISPOSITION = RelationSymbol("HereditaryPredisposition", 1)


def datalog_rewritable_compiled():
    """Theorem 3.3 compilation of the Example 4.5 ancestry query: the
    planner's semantic stage serves it on tier 1, tier 2 stays sound —
    exactly the two-tier candidate set adaptive swapping needs."""
    omq = OntologyMediatedQuery(
        ontology=Ontology(
            [
                ConceptInclusion(
                    Exists(
                        Role("HasParent"), ConceptName("HereditaryPredisposition")
                    ),
                    ConceptName("HereditaryPredisposition"),
                )
            ]
        ),
        query=atomic_query("HereditaryPredisposition"),
        data_schema=Schema.binary(
            concept_names=["HereditaryPredisposition"], role_names=["HasParent"]
        ),
    )
    return compile_to_mddlog(omq)


def ancestry_universe(generations: int = 16) -> list[Fact]:
    facts = [
        Fact(HAS_PARENT, (f"g{i}", f"g{i + 1}")) for i in range(generations)
    ]
    facts.append(Fact(PREDISPOSITION, (f"g{generations}",)))
    facts.append(Fact(PREDISPOSITION, ("g3",)))
    return facts


#: A twitchy policy for tests: decisions after a handful of events.
FAST_ADAPTIVE = AdaptivePolicy(mix_window=12, min_dwell=10, warmup=6, cost_gap=1.5)


def mix_flip_stream(session, universe, rng, queries_per_phase=20, churn=30):
    """Read-heavy -> delete-heavy churn -> read-heavy, collecting every
    query's answers (the cross-validation trace)."""
    answers = []
    session.insert_facts(universe)
    for _ in range(queries_per_phase):
        answers.append(session.certain_answers())
    live = list(universe)
    for step in range(churn):
        fact = rng.choice(sorted(live, key=str))
        session.delete_facts([fact])
        session.insert_facts([fact])
        if step % 8 == 0:
            answers.append(session.certain_answers())
    for _ in range(queries_per_phase):
        answers.append(session.certain_answers())
    return answers


# ---------------------------------------------------------------------------
# PlanPolicy: resolution, validation, legacy-alias equivalence
# ---------------------------------------------------------------------------


def test_adaptive_policy_validates_knobs():
    with pytest.raises(ValueError, match="mix_window"):
        AdaptivePolicy(mix_window=0)
    with pytest.raises(ValueError, match="flapping"):
        AdaptivePolicy(cost_gap=0.5)
    assert PlanPolicy().resolved_adaptive() is None
    assert PlanPolicy(adaptive=False).resolved_adaptive() is None
    assert PlanPolicy(adaptive=True).resolved_adaptive() == AdaptivePolicy()
    custom = AdaptivePolicy(mix_window=4)
    assert PlanPolicy(adaptive=custom).resolved_adaptive() is custom


def test_legacy_kwargs_warn_and_match_policy_behavior():
    program = datalog_rewritable_compiled()
    instance = Instance(ancestry_universe(6))
    with pytest.warns(DeprecationWarning, match="force_tier"):
        legacy = evaluate(program, instance, force_tier=TIER_GROUND_SAT)
    modern = evaluate(program, instance, PlanPolicy(tier=TIER_GROUND_SAT))
    assert legacy == modern

    with pytest.warns(DeprecationWarning, match="ObdaSession"):
        legacy_session = ObdaSession(program, force_tier=TIER_GROUND_SAT)
    modern_session = ObdaSession(program, policy=PlanPolicy(tier=TIER_GROUND_SAT))
    facts = ancestry_universe(6)
    legacy_session.insert_facts(facts)
    modern_session.insert_facts(facts)
    assert legacy_session.certain_answers() == modern_session.certain_answers()
    assert (
        legacy_session.explain()["queries"]["q"]["tier"]
        == modern_session.explain()["queries"]["q"]["tier"]
        == TIER_GROUND_SAT
    )


def test_policy_and_legacy_kwargs_together_is_an_error():
    program = datalog_rewritable_compiled()
    with pytest.raises(TypeError, match="not both"):
        ObdaSession(program, policy=PlanPolicy(), check="off")
    with pytest.raises(TypeError, match="not both"):
        evaluate(program, Instance([]), PlanPolicy(), force_tier=2)


def test_policy_reaches_every_entry_point():
    program = datalog_rewritable_compiled()
    policy = PlanPolicy(semantic=False)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert plan_program(program, policy).tier == TIER_GROUND_SAT
        assert isinstance(
            evaluate(program, Instance(ancestry_universe(4)), policy), frozenset
        )
        session = serve_omq_workload(program, policy=policy)
        assert isinstance(session, ObdaSession)
        assert session.plan().tier == TIER_GROUND_SAT
        sharded = serve_omq_workload(program, shards=2, policy=policy)
        assert isinstance(sharded, ShardedObdaSession)
        assert sharded.plan().tier == TIER_GROUND_SAT


# ---------------------------------------------------------------------------
# explain(): the versioned v2 contract
# ---------------------------------------------------------------------------


def test_explain_v2_schema_validates_plain_and_sharded():
    program = datalog_rewritable_compiled()
    session = ObdaSession(program, policy=PlanPolicy(adaptive=FAST_ADAPTIVE))
    session.insert_facts(ancestry_universe(6))
    session.certain_answers()
    report = session.explain()
    assert report["schema"] == "obda-explain/v2"
    assert validate_explain(report) == []
    assert report["adaptive"]["enabled"] is True
    assert report["adaptive"]["queries"]["q"]["candidates"] == [
        TIER_FIXPOINT,
        TIER_GROUND_SAT,
    ]

    sharded = ShardedObdaSession(
        program, shards=2, policy=PlanPolicy(adaptive=FAST_ADAPTIVE)
    )
    sharded.insert_facts(ancestry_universe(6))
    sharded.certain_answers()
    sharded_report = sharded.explain()
    assert validate_explain(sharded_report) == []
    assert sharded_report["queries"]["q"]["shards"][0]["shard"] == 0


def test_forced_tier_pins_the_session_with_rationale():
    program = datalog_rewritable_compiled()
    session = ObdaSession(
        program, policy=PlanPolicy(tier=TIER_GROUND_SAT, adaptive=FAST_ADAPTIVE)
    )
    rng = random.Random(3)
    mix_flip_stream(session, ancestry_universe(8), rng, queries_per_phase=8, churn=16)
    report = session.explain()
    assert validate_explain(report) == []
    assert report["adaptive"]["enabled"] is False
    assert report["adaptive"]["replans"] == []
    assert "forced" in report["adaptive"]["reason"]
    assert isinstance(session._state(None), _SatState)  # never swapped


# ---------------------------------------------------------------------------
# The cost model
# ---------------------------------------------------------------------------


def test_candidate_plans_cover_exactly_the_sound_tiers():
    program = datalog_rewritable_compiled()
    natural = plan_program(program)
    assert natural.tier == TIER_FIXPOINT  # semantic canonical datalog
    candidates = candidate_plans(program, natural)
    assert sorted(candidates) == [TIER_FIXPOINT, TIER_GROUND_SAT]
    assert candidates[TIER_FIXPOINT] is natural
    with pytest.raises(ValueError):
        plan_for_tier(program, TIER_REWRITE)  # and that's why 0 is absent


def test_static_rates_encode_the_tier_asymmetry():
    program = datalog_rewritable_compiled()
    natural = plan_program(program)
    candidates = candidate_plans(program, natural)
    instance = Instance(ancestry_universe(10))
    tier1 = static_rates(candidates[TIER_FIXPOINT], instance)
    tier2 = static_rates(candidates[TIER_GROUND_SAT], instance)
    # DRed deletion is the fixpoint tier's weakness; reads are its strength.
    assert tier1.delete > tier2.delete
    assert tier2.read > tier1.read


def test_cost_model_prefers_observed_means_over_statics():
    program = datalog_rewritable_compiled()
    natural = plan_program(program)
    model = TierCostModel(candidate_plans(program, natural))
    instance = Instance(ancestry_universe(6))
    mix = {"query": 1.0, "insert": 0.0, "delete": 0.0}
    # Observed: tier 1 reads are slow, tier 2 reads are fast — the model
    # must follow the measurements even though the statics say otherwise.
    model.observe(TIER_FIXPOINT, "query", 10, 10.0)
    model.observe(TIER_GROUND_SAT, "query", 10, 0.1)
    assert model.predict(TIER_GROUND_SAT, mix, instance) < model.predict(
        TIER_FIXPOINT, mix, instance
    )


# ---------------------------------------------------------------------------
# Live re-planning, cross-validated against every sound forced tier
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(4))
def test_adaptive_mix_flip_matches_every_sound_forced_tier(seed):
    program = datalog_rewritable_compiled()
    universe = ancestry_universe(10)
    adaptive = ObdaSession(program, policy=PlanPolicy(adaptive=FAST_ADAPTIVE))
    adaptive_answers = mix_flip_stream(
        adaptive, universe, random.Random(1000 + seed)
    )
    # The sound pinned baselines: the semantic tier-1 plan (a default
    # session never swaps) and syntactically forced tier 2.  Tier 0 is
    # unsound for this program, which candidate_plans proves elsewhere.
    pinned = {
        TIER_FIXPOINT: PlanPolicy(),
        TIER_GROUND_SAT: PlanPolicy(tier=TIER_GROUND_SAT),
    }
    for tier, policy in pinned.items():
        forced = ObdaSession(program, policy=policy)
        assert forced.plan().tier == tier
        forced_answers = mix_flip_stream(
            forced, universe, random.Random(1000 + seed)
        )
        assert adaptive_answers == forced_answers, (
            f"seed {seed}: adaptive answers diverge from pinned tier {tier}"
        )
    report = adaptive.explain()
    assert validate_explain(report) == []
    assert len(report["adaptive"]["replans"]) >= 1, "the mix flip never triggered"


@pytest.mark.parametrize("shards", [2, 3])
def test_sharded_adaptive_streams_with_migrations(shards):
    program = datalog_rewritable_compiled()
    rng = random.Random(40 + shards)
    sharded = ShardedObdaSession(
        program, shards=shards, policy=PlanPolicy(adaptive=FAST_ADAPTIVE)
    )
    reference = ObdaSession(program)
    # Two ancestry chains inserted interleaved, then joined by a bridging
    # fact — components merge, so smaller ones migrate between shards.
    chain_a = ancestry_universe(8)
    # Pick the second chain's prefix so its component lands on a different
    # shard than the first chain's — the bridge must then migrate one side.
    from repro.service.shards import _consistent_shard

    prefix = next(
        p
        for p in "hjkmnpqrstuvwxyz"
        if _consistent_shard(f"{p}0", shards) != _consistent_shard("g0", shards)
    )
    chain_b = [
        Fact(HAS_PARENT, (f"{prefix}{i}", f"{prefix}{i + 1}")) for i in range(8)
    ] + [Fact(PREDISPOSITION, (f"{prefix}8",))]
    bridge = Fact(HAS_PARENT, ("g0", f"{prefix}0"))
    for batch in (chain_a, chain_b, [bridge]):
        sharded.insert_facts(batch)
        reference.insert_facts(batch)
        assert sharded.certain_answers() == reference.certain_answers()
    live = chain_a + chain_b + [bridge]
    for step in range(24):
        fact = rng.choice(sorted(live, key=str))
        sharded.delete_facts([fact])
        reference.delete_facts([fact])
        sharded.insert_facts([fact])
        reference.insert_facts([fact])
        if step % 6 == 0:
            assert sharded.certain_answers() == reference.certain_answers()
    for _ in range(10):
        assert sharded.certain_answers() == reference.certain_answers()
    assert sharded.stats.facts_migrated > 0, "the bridge never forced a migration"
    report = sharded.explain()
    assert validate_explain(report) == []
    for record in report["adaptive"]["replans"]:
        assert record["shard"] in range(shards)


def test_hysteresis_never_flaps():
    """Consecutive swaps are always at least ``min_dwell`` events apart,
    and the ``max_replans`` cap is hard."""
    program = datalog_rewritable_compiled()
    policy = AdaptivePolicy(
        mix_window=8, min_dwell=12, warmup=4, cost_gap=1.2, max_replans=2
    )
    session = ObdaSession(program, policy=PlanPolicy(adaptive=policy))
    universe = ancestry_universe(8)
    rng = random.Random(99)
    # An adversarial alternating stream: one query, one delete/insert pair,
    # repeatedly — the mix itself flaps, the controller must not.
    session.insert_facts(universe)
    live = list(universe)
    for _ in range(120):
        session.certain_answers()
        fact = rng.choice(sorted(live, key=str))
        session.delete_facts([fact])
        session.insert_facts([fact])
    history = session.explain()["adaptive"]["queries"]["q"]["history"]
    assert len(history) <= 2  # max_replans is a hard cap
    for previous, current in zip(history, history[1:]):
        assert current["event"] - previous["event"] >= policy.min_dwell


def test_warm_plan_caches_survive_swaps():
    """A tier revisited after a swap (or compaction) reuses the join plans
    it compiled the first time instead of recompiling them."""
    program = datalog_rewritable_compiled()
    session = ObdaSession(program, policy=PlanPolicy(tier=TIER_GROUND_SAT))
    session.insert_facts(ancestry_universe(6))
    state = session._state(None)
    assert isinstance(state, _SatState)
    before = [rule.plans for rule in state.grounder._rules]
    assert any(plans is not None for plans in before)
    session.compact()
    after = session._state(None)
    assert after is not state
    for old_plans, rule in zip(before, after.grounder._rules):
        if old_plans is not None:
            assert rule.plans is old_plans  # transplanted, not recompiled

    fix_session = ObdaSession(program)  # semantic tier-1 plan
    fix_session.insert_facts(ancestry_universe(6))
    fix_session.delete_facts([Fact(PREDISPOSITION, ("g3",))])  # compiles DRed plans
    fix_state = fix_session._state(None)
    assert isinstance(fix_state, _FixpointState)
    rederive = fix_state.fixpoint._rederive_plans
    assert rederive is not None
    fix_session.compact()
    assert fix_session._state(None).fixpoint._rederive_plans is rederive


def test_adaptive_session_answers_unchanged_mid_swap_epoch():
    """The epoch that triggers a swap still answers identically: the swap
    rebuilds state from the same frozen instance."""
    program = datalog_rewritable_compiled()
    universe = ancestry_universe(10)
    adaptive = ObdaSession(
        program,
        policy=PlanPolicy(
            adaptive=AdaptivePolicy(mix_window=6, min_dwell=4, warmup=4, cost_gap=1.1)
        ),
    )
    forced = ObdaSession(program, policy=PlanPolicy(tier=TIER_GROUND_SAT))
    adaptive.insert_facts(universe)
    forced.insert_facts(universe)
    rng = random.Random(7)
    live = list(universe)
    for _ in range(40):
        fact = rng.choice(sorted(live, key=str))
        for sess in (adaptive, forced):
            sess.delete_facts([fact])
        assert adaptive.certain_answers() == forced.certain_answers()
        for sess in (adaptive, forced):
            sess.insert_facts([fact])
        assert adaptive.certain_answers() == forced.certain_answers()


# ---------------------------------------------------------------------------
# Cost-based unfolding caps
# ---------------------------------------------------------------------------


def test_effective_caps_default_to_the_historical_floor():
    program = datalog_rewritable_compiled()  # recursive -> no estimate
    assert effective_unfold_caps(program) == (
        MAX_UNFOLDED_DISJUNCTS,
        MAX_DISJUNCT_ATOMS,
    )


def test_explicit_caps_override_the_cost_model():
    program = datalog_rewritable_compiled()
    caps = UnfoldCaps(max_disjuncts=8, max_atoms=4)
    assert effective_unfold_caps(program, caps) == (8, 4)
    plan = plan_program(program, PlanPolicy(unfold_caps=caps, semantic=False))
    assert plan.tier == TIER_GROUND_SAT  # disjunctive either way
