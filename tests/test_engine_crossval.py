"""Randomized cross-validation of the evaluation engine.

Every component of the engine has an intentionally naive reference
counterpart; these tests generate small random inputs and assert agreement:

* ``evaluate`` / ``holds`` against the textbook ``models()`` enumerator
  (certain answers are the intersection over all models extending the data);
* the indexed homomorphism search against brute-force enumeration of all
  mappings between active domains;
* the engine's join planner against cartesian enumeration plus filtering;
* the CDCL solver against the reference ``_dpll`` on random clause sets;
* the per-constant / per-position instance indexes against linear scans.
"""

import itertools
import random

import pytest

from repro.core import Atom, Fact, Instance, RelationSymbol, Variable
from repro.core.homomorphism import has_homomorphism, homomorphisms, is_homomorphism
from repro.datalog import (
    DisjunctiveDatalogProgram,
    Rule,
    adom_atom,
    evaluate,
    goal_atom,
    holds,
    models,
)
from repro.datalog.evaluation import _dpll, ground_clauses
from repro.engine import (
    ClauseSolver,
    ParallelEvaluator,
    ReplicaPool,
    ground_program,
    join_assignments,
    solver_for_clauses,
)

A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
EDGE = RelationSymbol("edge", 2)
P = RelationSymbol("P", 1)
Q = RelationSymbol("Q", 1)
EDB = [A, B, EDGE]
IDB = [P, Q]
X, Y = Variable("x"), Variable("y")


def _random_instance(rng: random.Random, domain: list) -> Instance:
    facts = []
    for element in domain:
        for symbol in (A, B):
            if rng.random() < 0.5:
                facts.append(Fact(symbol, (element,)))
    for source in domain:
        for target in domain:
            if rng.random() < 0.4:
                facts.append(Fact(EDGE, (source, target)))
    return Instance(facts)


def _random_body(rng: random.Random) -> tuple[Atom, ...]:
    pool = []
    for symbol in EDB + IDB:
        if symbol.arity == 1:
            pool.extend([Atom(symbol, (X,)), Atom(symbol, (Y,))])
        else:
            pool.extend(
                [Atom(symbol, (X, Y)), Atom(symbol, (Y, X)), Atom(symbol, (X, X))]
            )
    pool.extend([adom_atom(X), adom_atom(Y)])
    size = rng.randint(1, 3)
    return tuple(rng.sample(pool, size))


def _random_program(rng: random.Random, goal_arity: int) -> DisjunctiveDatalogProgram:
    rules = []
    for _ in range(rng.randint(2, 4)):
        body = _random_body(rng)
        body_vars = {v for atom in body for v in atom.variables}
        head_pool = [
            Atom(symbol, (v,)) for symbol in IDB for v in sorted(body_vars, key=str)
        ]
        kind = rng.random()
        if kind < 0.25:
            head: tuple[Atom, ...] = ()  # constraint
        elif kind < 0.55:
            if goal_arity == 0:
                head = (goal_atom(),)
            else:
                head = (goal_atom(rng.choice(sorted(body_vars, key=str))),)
        else:
            head = tuple(
                rng.sample(head_pool, min(len(head_pool), rng.randint(1, 2)))
            )
        rules.append(Rule(head, body))
    if not any(rule.is_goal_rule() for rule in rules):
        goal_head = (goal_atom(),) if goal_arity == 0 else (goal_atom(X),)
        rules.append(Rule(goal_head, (Atom(P, (X,)),)))
    return DisjunctiveDatalogProgram(rules)


def _naive_certain_answers(
    program: DisjunctiveDatalogProgram, instance: Instance
) -> frozenset:
    domain = sorted(instance.active_domain, key=repr)
    candidates = list(itertools.product(domain, repeat=program.arity))
    certain = set(candidates)
    for model in models(program, instance):
        goal_tuples = model.tuples(program.goal_relation)
        certain &= {c for c in certain if c in goal_tuples}
        if not certain:
            break
    return frozenset(certain)


@pytest.mark.parametrize("seed", range(30))
def test_evaluate_matches_model_enumeration(seed):
    rng = random.Random(seed)
    goal_arity = rng.choice([0, 1])
    program = _random_program(rng, goal_arity)
    domain = list(range(1, rng.randint(2, 3) + 1))
    instance = _random_instance(rng, domain)
    expected = _naive_certain_answers(program, instance)
    assert evaluate(program, instance) == expected
    adom = sorted(instance.active_domain, key=repr)
    for candidate in itertools.product(adom, repeat=goal_arity):
        assert holds(program, instance, candidate) == (candidate in expected)


@pytest.mark.parametrize("seed", range(40))
def test_homomorphisms_match_brute_force(seed):
    rng = random.Random(1000 + seed)
    source = _random_instance(rng, list(range(rng.randint(1, 3))))
    target = _random_instance(rng, ["a", "b", "c"][: rng.randint(1, 3)])
    source_domain = sorted(source.active_domain, key=repr)
    target_domain = sorted(target.active_domain, key=repr)
    brute = set()
    for images in itertools.product(target_domain, repeat=len(source_domain)):
        mapping = dict(zip(source_domain, images))
        if is_homomorphism(mapping, source, target):
            brute.add(tuple(sorted(mapping.items(), key=repr)))
    engine = {
        tuple(sorted(hom.items(), key=repr)) for hom in homomorphisms(source, target)
    }
    assert engine == brute
    # fixed-map variant: pin the first element to each possible image
    if source_domain:
        pivot = source_domain[0]
        for image in target_domain:
            fixed_engine = {
                tuple(sorted(hom.items(), key=repr))
                for hom in homomorphisms(source, target, fixed={pivot: image})
            }
            fixed_brute = {h for h in brute if dict(h)[pivot] == image}
            assert fixed_engine == fixed_brute


def test_nullary_facts_constrain_the_empty_homomorphism():
    """A source with only nullary facts has an empty active domain, but the
    empty map is a homomorphism only when those facts hold in the target."""
    nil = RelationSymbol("nil", 0)
    source = Instance([Fact(nil, ())])
    assert not has_homomorphism(source, Instance([]))
    assert not has_homomorphism(source, Instance([Fact(A, (1,))]))
    assert has_homomorphism(source, Instance([Fact(nil, ())]))
    assert has_homomorphism(Instance([]), Instance([]))
    assert list(homomorphisms(source, Instance([Fact(nil, ())]))) == [{}]


@pytest.mark.parametrize("seed", range(25))
def test_join_planner_matches_cartesian_filter(seed):
    rng = random.Random(2000 + seed)
    instance = _random_instance(rng, list(range(1, 4)))
    atoms = [a for a in _random_body(rng) if a.relation.name != "adom"]
    if not atoms:
        atoms = [Atom(EDGE, (X, Y))]
    variables = sorted({v for atom in atoms for v in atom.variables}, key=str)
    domain = sorted(instance.active_domain, key=repr)
    expected = set()
    for values in itertools.product(domain, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(
            tuple(
                assignment[t] if isinstance(t, Variable) else t
                for t in atom.arguments
            )
            in instance.tuples(atom.relation)
            for atom in atoms
        ):
            expected.add(tuple(assignment[v] for v in variables))
    got = {
        tuple(assignment[v] for v in variables)
        for assignment in join_assignments(atoms, instance)
    }
    assert got == expected


@pytest.mark.parametrize("seed", range(30))
def test_cdcl_matches_reference_dpll(seed):
    rng = random.Random(3000 + seed)
    atoms = [("v", i) for i in range(rng.randint(2, 6))]
    clauses = []
    for _ in range(rng.randint(1, 10)):
        chosen = rng.sample(atoms, rng.randint(1, min(3, len(atoms))))
        negative = frozenset(a for a in chosen if rng.random() < 0.5)
        positive = frozenset(a for a in chosen if a not in negative)
        clauses.append((negative, positive))
    forced = {a for a in atoms if rng.random() < 0.3}
    reference = _dpll(list(clauses), set(forced))
    solver = solver_for_clauses(clauses)
    assert solver.solve(false_atoms=forced) == reference
    # re-query the same persistent solver with different assumptions
    for atom in atoms[:2]:
        assert solver.solve(false_atoms=[atom]) == _dpll(list(clauses), {atom})
        assert solver.solve() == _dpll(list(clauses), set())


@pytest.mark.parametrize("seed", range(10))
def test_ground_clauses_agree_with_reference_dpll_verdicts(seed):
    """The engine's deduplicated/subsumed clause set is equisatisfiable with
    the reference solver's verdict for every goal assumption."""
    rng = random.Random(4000 + seed)
    goal_arity = rng.choice([0, 1])
    program = _random_program(rng, goal_arity)
    instance = _random_instance(rng, [1, 2])
    clauses = ground_clauses(program, instance)
    domain = sorted(instance.active_domain, key=repr)
    solver = solver_for_clauses(clauses)
    for candidate in itertools.product(domain, repeat=goal_arity):
        atom = (program.goal_relation, candidate)
        assert solver.solve(false_atoms=[atom]) == _dpll(list(clauses), {atom})


@pytest.mark.parametrize("seed", range(15))
def test_incremental_clause_addition_stays_sound(seed):
    """Clauses added between solve calls must respect root-level assignments.

    Regression test: watches placed on literals already (permanently) false
    at the root level are never revisited by propagation, so late-added
    clauses must be simplified first.  Cross-validates an add/solve
    interleaving against the reference DPLL on the final clause set.
    """
    rng = random.Random(6000 + seed)
    atoms = [("v", i) for i in range(rng.randint(3, 6))]
    solver = ClauseSolver()
    added = []

    def random_clause(max_width):
        chosen = rng.sample(atoms, rng.randint(1, min(max_width, len(atoms))))
        negative = frozenset(a for a in chosen if rng.random() < 0.5)
        return (negative, frozenset(a for a in chosen if a not in negative))

    for _round in range(4):
        for _ in range(rng.randint(1, 4)):
            clause = random_clause(3)
            added.append(clause)
            solver.add_clause(*clause)
        assumption = [rng.choice(atoms)] if rng.random() < 0.5 else []
        assert solver.solve(false_atoms=assumption) == _dpll(
            list(added), set(assumption)
        )
        if solver.solve():
            model = solver.last_model
            for negative, positive in added:
                assert any(not model[a] for a in negative) or any(
                    model[a] for a in positive
                )


@pytest.mark.parametrize("seed", range(10))
def test_parallel_evaluate_matches_serial(seed):
    """Chunked worker-pool candidate decision equals the serial engine for
    every worker count and chunk size (including the in-process serial
    fallback at workers=1 and single-candidate chunks that exercise the
    learned-clause feedback channel)."""
    rng = random.Random(9000 + seed)
    goal_arity = rng.choice([0, 1])
    program = _random_program(rng, goal_arity)
    instance = _random_instance(rng, [1, 2, 3])
    serial = evaluate(program, instance)
    for workers, chunk_size in ((1, 1), (2, 1), (2, 2), (3, None)):
        got = evaluate(
            program, instance, parallel=workers, chunk_size=chunk_size
        )
        assert got == serial, (workers, chunk_size)


def test_parallel_evaluator_decides_batches_and_stays_warm():
    """One pool decides several batches; per-candidate verdicts match
    ``holds`` (out-of-nothing candidates included via full product)."""
    rng = random.Random(424242)
    program = _random_program(rng, 1)
    instance = _random_instance(rng, [1, 2, 3])
    ground = ground_program(program, instance)
    expected = ground.certain_answers()
    with ParallelEvaluator(ground, workers=2, chunk_size=2) as evaluator:
        assert evaluator.certain_answers() == expected
        domain = sorted(instance.active_domain, key=repr)
        decided = evaluator.decide([(value,) for value in domain])
        for value in domain:
            assert decided[(value,)] == ((value,) in expected)
        assert evaluator.decide([]) == {}


def test_parallel_vacuous_certainty_respects_the_domain():
    """An inconsistent program makes every adom tuple vacuously certain —
    but tuples outside the active domain are still never answers, in the
    parallel path exactly as in the session layer."""
    program = DisjunctiveDatalogProgram(
        [
            Rule((), (Atom(A, (X,)),)),  # any A-fact is inconsistent
            Rule((goal_atom(X),), (Atom(B, (X,)),)),
        ]
    )
    instance = Instance([Fact(A, (1,)), Fact(B, (2,))])
    ground = ground_program(program, instance)
    for workers in (1, 2):
        with ParallelEvaluator(ground, workers=workers) as evaluator:
            assert evaluator.certain_answers() == frozenset({(1,), (2,)})
            decided = evaluator.decide([(1,), (2,), ("ghost",)])
            assert decided == {(1,): True, (2,): True, ("ghost",): False}


def _echo_task(context, chunk, shared):
    return [(context.payload, item, tuple(shared)) for item in chunk], chunk


def test_replica_pool_orders_results_and_accumulates_feedback():
    """Results come back in chunk order for both the process pool and the
    serial fallback; feedback from earlier chunks reaches later ones
    (serial fallback, where dispatch order is deterministic)."""
    chunks = [("a", "b"), ("c",), ("d",)]
    with ReplicaPool("payload", workers=1) as pool:
        results = pool.run(_echo_task, chunks, feedback=True)
    assert [[item for _, item, _ in chunk] for chunk in results] == [
        ["a", "b"],
        ["c"],
        ["d"],
    ]
    assert all(payload == "payload" for chunk in results for payload, _, _ in chunk)
    # the third chunk saw feedback from the first two
    assert set(results[2][0][2]) == {"a", "b", "c"}
    with ReplicaPool("payload", workers=3) as pool:
        parallel_results = pool.run(_echo_task, chunks)
    assert [
        [item for _, item, _ in chunk] for chunk in parallel_results
    ] == [["a", "b"], ["c"], ["d"]]


def test_solver_exports_implied_clauses():
    """export_clauses round-trips the database into atom form; everything
    exported is implied by the problem clauses (checked by resolution with
    the reference DPLL on a small instance)."""
    atoms = [("v", i) for i in range(4)]
    clauses = [
        (frozenset([atoms[0]]), frozenset([atoms[1]])),
        (frozenset([atoms[1]]), frozenset([atoms[2]])),
        (frozenset([atoms[0], atoms[2]]), frozenset([atoms[3]])),
    ]
    solver = solver_for_clauses(clauses)
    base = solver.clause_count()
    assert set(solver.export_clauses(0)) == set(clauses)
    # force a conflict under assumptions so the solver actually learns
    assert not solver.solve(true_atoms=[atoms[0]], false_atoms=[atoms[3]])
    exported = solver.export_clauses(base)
    assert exported, "the conflicting query should have learned a clause"
    for negative, positive in exported:
        # an implied clause: adding its negation makes the set unsatisfiable
        assert not _dpll(
            list(clauses)
            + [(frozenset([a]), frozenset()) for a in positive]
            + [(frozenset(), frozenset([a])) for a in negative],
            set(),
        )


def _eval_ground(formula, valuation):
    """Truth value of a ground formula under a fact valuation."""
    if isinstance(formula, bool):
        return formula
    tag = formula[0]
    if tag == "lit":
        _tag, fact, positive = formula
        value = valuation[fact]
        return value if positive else not value
    children = [_eval_ground(child, valuation) for child in formula[1]]
    return all(children) if tag == "and" else any(children)


def _ground_facts(formula, accumulator):
    if isinstance(formula, bool):
        return accumulator
    if formula[0] == "lit":
        accumulator.add(formula[1])
        return accumulator
    for child in formula[1]:
        _ground_facts(child, accumulator)
    return accumulator


@pytest.mark.parametrize("seed", range(20))
def test_miniscoped_cq_grounding_is_equivalent_to_flat(seed):
    """ground_cq's per-component enumeration equals the flat domain**k product."""
    import itertools as it

    from repro.core.cq import ConjunctiveQuery
    from repro.fo.grounding import ground_cq

    rng = random.Random(7000 + seed)
    variables = [Variable(f"y{i}") for i in range(rng.randint(1, 4))]
    answer = (Variable("x"),) if rng.random() < 0.5 else ()
    pool = list(variables) + list(answer)
    atoms = []
    for _ in range(rng.randint(1, 4)):
        symbol = rng.choice([A, B, EDGE])
        args = tuple(rng.choice(pool) for _ in range(symbol.arity))
        atoms.append(Atom(symbol, args))
    used = {v for atom in atoms for v in atom.variables}
    if answer and answer[0] not in used:
        atoms.append(Atom(A, (answer[0],)))
    query = ConjunctiveQuery(answer, atoms)
    domain = list(range(rng.randint(0, 3)))
    answer_values = tuple("c" for _ in answer)
    for positive in (True, False):
        grounded = ground_cq(query, domain, answer_values, positive=positive)
        # flat reference: one big product over every existential variable
        existential = sorted(query.variables - set(query.answer_variables), key=str)
        assignment = dict(zip(query.answer_variables, answer_values))
        flat_children = []
        for values in it.product(domain, repeat=len(existential)):
            extended = dict(assignment)
            extended.update(zip(existential, values))
            lits = []
            for atom in sorted(query.atoms, key=str):
                arguments = tuple(
                    extended[a] if isinstance(a, Variable) else a
                    for a in atom.arguments
                )
                lits.append(("lit", Fact(atom.relation, arguments), positive))
            conj = all if positive else any
            flat_children.append((conj, lits))
        facts = sorted(_ground_facts(grounded, set()), key=str)
        for _ in range(25):
            valuation = {}
            for _conj, lits in flat_children:
                for lit in lits:
                    valuation.setdefault(lit[1], rng.random() < 0.5)
            for fact in facts:
                valuation.setdefault(fact, rng.random() < 0.5)
            flat_value_parts = [
                (all if positive else any)(
                    (valuation[lit[1]] if lit[2] else not valuation[lit[1]])
                    for lit in lits
                )
                for _conj, lits in flat_children
            ]
            flat_value = (
                any(flat_value_parts) if positive else all(flat_value_parts)
            )
            assert _eval_ground(grounded, valuation) == flat_value


@pytest.mark.parametrize("seed", range(20))
def test_miniscoped_quantifier_grounding_is_equivalent_to_flat(seed):
    """ground()'s block-split quantifier enumeration preserves truth values."""
    import itertools as it

    from repro.fo.formulas import (
        AndF,
        ExistsF,
        ForallF,
        NotF,
        OrF,
        RelationalAtom,
    )
    from repro.fo.grounding import ground

    rng = random.Random(8000 + seed)
    fo_vars = [Variable(f"v{i}") for i in range(3)]

    def random_formula(depth, scope):
        choice = rng.random()
        if depth == 0 or choice < 0.3:
            symbol = rng.choice([A, B, EDGE])
            args = tuple(rng.choice(scope) for _ in range(symbol.arity))
            atom = RelationalAtom(symbol, args)
            return NotF(atom) if rng.random() < 0.3 else atom
        if choice < 0.5:
            return AndF(
                tuple(random_formula(depth - 1, scope) for _ in range(2))
            )
        if choice < 0.7:
            return OrF(
                tuple(random_formula(depth - 1, scope) for _ in range(2))
            )
        if choice < 0.82:
            # negation over a composite subformula: exercises the
            # double-negation cancellation of the miniscoped decomposition
            return NotF(random_formula(depth - 1, scope))
        quantifier = ExistsF if rng.random() < 0.5 else ForallF
        bound = tuple(
            rng.sample(fo_vars, rng.randint(1, 2))
        )
        return quantifier(bound, random_formula(depth - 1, list(scope) + list(bound)))

    quantifier = ExistsF if rng.random() < 0.5 else ForallF
    formula = quantifier(tuple(fo_vars), random_formula(2, fo_vars))
    domain = list(range(rng.randint(1, 3)))
    grounded = ground(formula, domain)

    def flat(node, values, positive):
        """Reference grounding evaluated directly under a valuation."""
        if isinstance(node, RelationalAtom):
            arguments = tuple(
                values[a] if isinstance(a, Variable) else a for a in node.arguments
            )
            result = valuation[Fact(node.relation, arguments)]
            return result if positive else not result
        if isinstance(node, NotF):
            return flat(node.operand, values, not positive)
        if isinstance(node, AndF):
            op = all if positive else any
            return op(flat(c, values, positive) for c in node.conjuncts)
        if isinstance(node, OrF):
            op = any if positive else all
            return op(flat(c, values, positive) for c in node.disjuncts)
        existential_node = isinstance(node, ExistsF)
        op = any if existential_node == positive else all
        results = []
        for assignment in it.product(domain, repeat=len(node.variables)):
            extended = dict(values)
            extended.update(zip(node.variables, assignment))
            results.append(flat(node.body, extended, positive))
        return op(results)

    all_facts = set()
    for symbol in (A, B, EDGE):
        for args in it.product(domain, repeat=symbol.arity):
            all_facts.add(Fact(symbol, args))
    _ground_facts(grounded, all_facts)
    for _ in range(25):
        valuation = {fact: rng.random() < 0.5 for fact in all_facts}
        assert _eval_ground(grounded, valuation) == flat(formula, {}, True)


def test_negated_junction_with_nested_negation_grounds_correctly():
    """Regression: ∀x ¬(¬A(x) ∧ B(x)) must ground to A(c) ∨ ¬B(c) — the
    miniscoped decomposition has to cancel the double negation, not stack
    a new one on top of it."""
    from repro.fo.formulas import AndF, ForallF, NotF, RelationalAtom
    from repro.fo.grounding import ground

    x = Variable("x")
    formula = ForallF(
        (x,),
        NotF(AndF((NotF(RelationalAtom(A, (x,))), RelationalAtom(B, (x,))))),
    )
    grounded = ground(formula, ["c"])
    fact_a, fact_b = Fact(A, ("c",)), Fact(B, ("c",))
    for value_a in (False, True):
        for value_b in (False, True):
            valuation = {fact_a: value_a, fact_b: value_b}
            assert _eval_ground(grounded, valuation) == (value_a or not value_b)


# ---------------------------------------------------------------------------
# Columnar engine vs tuple-at-a-time reference
# ---------------------------------------------------------------------------


def _random_datalog_program(rng: random.Random) -> "DatalogProgram":
    """A random *plain* (single-head, no-constraint) datalog program."""
    from repro.datalog import DatalogProgram

    rules = []
    for _ in range(rng.randint(2, 5)):
        body = _random_body(rng)
        body_vars = sorted(
            {v for atom in body for v in atom.variables}, key=str
        )
        if rng.random() < 0.3:
            head = goal_atom(*rng.sample(body_vars, min(len(body_vars), 1)))
        else:
            head = Atom(rng.choice(IDB), (rng.choice(body_vars),))
        rules.append(Rule((head,), body))
    if not any(rule.is_goal_rule() for rule in rules):
        rules.append(Rule((goal_atom(X),), (Atom(P, (X,)),)))
    return DatalogProgram(rules)


@pytest.mark.parametrize("seed", range(25))
def test_columnar_fixpoint_matches_tuple_engine(seed):
    """The interned set-at-a-time fixpoint equals the tuple-at-a-time
    reference — same facts, same schema, same active domain."""
    rng = random.Random(11000 + seed)
    program = _random_datalog_program(rng)
    instance = _random_instance(rng, list(range(1, rng.randint(3, 5))))
    columnar = program.least_fixpoint(instance)
    reference = program.least_fixpoint(instance, engine="tuple")
    assert columnar.facts == reference.facts
    assert columnar.active_domain == reference.active_domain
    assert program.evaluate(instance) == program.evaluate(
        instance, engine="tuple"
    )


@pytest.mark.parametrize("seed", range(20))
def test_columnar_grounding_matches_tuple_engine(seed):
    """Grounding through the batch executor emits the same clause set (after
    dedup/subsumption) as the tuple-join grounder, and the same answers.

    Auxiliary block atoms (:class:`GroundAux`) are numbered in grounding
    order, which differs between the engines' join orders — aux-mentioning
    clauses are compared by count, everything else exactly.
    """
    from repro.engine.grounder import GroundAux

    rng = random.Random(12000 + seed)
    goal_arity = rng.choice([0, 1])
    program = _random_program(rng, goal_arity)
    instance = _random_instance(rng, list(range(1, rng.randint(2, 4))))
    columnar = ground_program(program, instance, engine="columnar")
    reference = ground_program(program, instance, engine="tuple")

    def split(clauses):
        plain, aux = set(), []
        for negative, positive in clauses:
            if any(
                isinstance(lit, GroundAux)
                for lit in itertools.chain(negative, positive)
            ):
                aux.append((negative, positive))
            else:
                plain.add((negative, positive))
        return plain, aux

    columnar_plain, columnar_aux = split(columnar.clauses)
    reference_plain, reference_aux = split(reference.clauses)
    assert columnar_plain == reference_plain
    assert len(columnar_aux) == len(reference_aux)
    assert columnar.certain_answers() == reference.certain_answers()


@pytest.mark.parametrize("seed", range(25))
def test_execute_join_matches_join_assignments(seed):
    """The compiled batch executor agrees with the tuple-at-a-time join
    planner on random bodies — including constants in atoms (resolved
    lazily per interner) and partially bound seed rows."""
    from repro.engine import compile_join, execute_join, join_exists

    rng = random.Random(13000 + seed)
    instance = _random_instance(rng, list(range(1, 4)))
    atoms = [a for a in _random_body(rng) if a.relation.name != "adom"]
    if not atoms:
        atoms = [Atom(EDGE, (X, Y))]
    if rng.random() < 0.5:
        # pin one position of one atom to a constant (sometimes unknown)
        index = rng.randrange(len(atoms))
        atom = atoms[index]
        constant = rng.choice([1, 2, "missing"])
        position = rng.randrange(len(atom.arguments))
        arguments = list(atom.arguments)
        arguments[position] = constant
        atoms[index] = Atom(atom.relation, tuple(arguments))
    variables = sorted({v for atom in atoms for v in atom.variables}, key=str)
    expected = {
        tuple(sorted((v.name, a[v]) for v in variables))
        for a in join_assignments(atoms, instance)
    }
    plan = compile_join(atoms, instance)
    rows = execute_join(plan, instance)
    got = {
        tuple(sorted((v.name, a[v]) for v in variables))
        for a in plan.assignments(rows, instance.interner)
    }
    assert got == expected
    assert len(rows) == len(got)  # batches are duplicate-free
    assert join_exists(plan, instance) == bool(expected)
    # partially bound: seed the plan with each value of one variable
    if variables:
        pivot = rng.choice(variables)
        bound_plan = compile_join(atoms, instance, bound=[pivot])
        for value in [1, 2, 3, "missing"]:
            seed_row = bound_plan.intern_seed({pivot: value}, instance.interner)
            seeded = {
                tuple(sorted((v.name, a[v]) for v in variables))
                for a in bound_plan.assignments(
                    execute_join(bound_plan, instance, [seed_row]),
                    instance.interner,
                )
            }
            narrowed = {
                key for key in expected if (pivot.name, value) in key
            }
            assert seeded == narrowed
            assert join_exists(bound_plan, instance, seed_row) == bool(
                narrowed
            )


@pytest.mark.parametrize("seed", range(10))
def test_instance_indexes_match_linear_scans(seed):
    rng = random.Random(5000 + seed)
    instance = _random_instance(rng, list(range(1, 5)))
    for constant in list(instance.active_domain) + ["missing"]:
        assert instance.facts_with_constant(constant) == frozenset(
            f for f in instance.facts if constant in f.arguments
        )
    for symbol in (A, B, EDGE):
        rows = instance.tuples(symbol)
        for position in range(symbol.arity):
            values = {row[position] for row in rows}
            assert instance.position_values(symbol, position) == values
            for value in values | {"missing"}:
                assert instance.tuples_with(symbol, position, value) == frozenset(
                    row for row in rows if row[position] == value
                )
