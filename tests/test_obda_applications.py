"""Tests for the Section 5 / 6 applications: dichotomy, containment,
rewritability and schema-free OMQs."""

from repro.core import Schema, atomic_query, boolean_atomic_query
from repro.dl import ConceptInclusion, ConceptName, Exists, Ontology, Role
from repro.obda import (
    atomic_omq_contained_in,
    classify_omq,
    containment_counterexample,
    omq_contained_in_bounded,
    omq_datalog_rewritable,
    omq_fo_rewritable,
    schema_free_variant,
)
from repro.omq import OntologyMediatedQuery
from repro.translations import csp_to_omq
from repro.workloads.csp_zoo import three_colourability_template
from repro.workloads.medical import (
    example_2_2_q1_omq,
    example_2_2_q2_omq,
    example_4_5_omq,
    example_4_5_schema,
    family_instance,
)


def simple_omq(query_name: str, extra_axioms=()):
    ontology = Ontology(
        [
            ConceptInclusion(ConceptName("A"), ConceptName("B")),
            ConceptInclusion(
                Exists(Role("R"), ConceptName("B")), ConceptName("C")
            ),
            *extra_axioms,
        ]
    )
    schema = Schema.binary(["A", "B", "C"], ["R"])
    return OntologyMediatedQuery(
        ontology=ontology, query=atomic_query(query_name), data_schema=schema
    )


# -- rewritability (Theorems 5.15 / 5.16) ----------------------------------------------


def test_example_2_2_q2_is_datalog_but_not_fo_rewritable():
    """The paper's Example 2.2: the hereditary-predisposition query is
    expressible in datalog but not in FO."""
    omq = example_4_5_omq()
    assert not omq_fo_rewritable(omq)
    assert omq_datalog_rewritable(omq)


def test_non_recursive_query_is_fo_rewritable():
    omq = simple_omq("B")
    assert omq_fo_rewritable(omq)
    assert omq_datalog_rewritable(omq)


def test_three_colourability_omq_is_not_rewritable():
    omq = csp_to_omq(three_colourability_template())
    assert not omq_fo_rewritable(omq)
    assert not omq_datalog_rewritable(omq)


# -- dichotomy (Theorems 5.1 / 5.3) ------------------------------------------------------


def test_classification_of_tractable_omq():
    report = classify_omq(example_4_5_omq())
    assert report.is_tractable()
    assert report.datalog_rewritable
    assert not report.fo_rewritable


def test_classification_of_hard_omq():
    omq = csp_to_omq(three_colourability_template())
    report = classify_omq(omq)
    assert report.complexity == "coNP-hard"
    assert not report.fo_rewritable


# -- containment (Theorems 5.6 / 5.7) -----------------------------------------------------


def test_atomic_containment_via_templates():
    # q2 (hereditary predisposition with recursion) is contained in itself and
    # contains the trivial query asking for asserted predispositions only.
    recursive = example_4_5_omq()
    trivial = OntologyMediatedQuery(
        ontology=Ontology([]),
        query=atomic_query("HereditaryPredisposition"),
        data_schema=example_4_5_schema(),
    )
    assert atomic_omq_contained_in(recursive, recursive)
    assert atomic_omq_contained_in(trivial, recursive)
    assert not atomic_omq_contained_in(recursive, trivial)


def test_bounded_containment_agrees_on_medical_queries():
    q1 = example_2_2_q1_omq()
    q2 = example_2_2_q2_omq()
    assert omq_contained_in_bounded(q1, q1, max_elements=2, max_facts=2, engine="bounded")
    # BacterialInfection answers are not HereditaryPredisposition answers.
    assert not omq_contained_in_bounded(
        q1, q2, max_elements=2, max_facts=2, engine="bounded"
    )
    witness = containment_counterexample(
        q1, q2, max_elements=2, max_facts=2, engine="bounded"
    )
    assert witness is not None


def test_containment_of_weaker_ontology():
    strong = simple_omq("B")
    weak = OntologyMediatedQuery(
        ontology=Ontology([]),
        query=atomic_query("B"),
        data_schema=strong.data_schema,
    )
    assert atomic_omq_contained_in(weak, strong)
    assert not atomic_omq_contained_in(strong, weak)


# -- schema-free OMQs (Section 6) -----------------------------------------------------------


def test_schema_free_variant_accepts_any_symbols():
    from repro.core import Fact, Instance, RelationSymbol

    omq = schema_free_variant(example_4_5_omq())
    data = Instance(
        [
            Fact(RelationSymbol("HasParent", 2), ("a", "b")),
            Fact(RelationSymbol("HereditaryPredisposition", 1), ("b",)),
            Fact(RelationSymbol("Unrelated", 1), ("a",)),
        ]
    )
    answers = omq.certain_answers(data)
    assert ("a",) in answers and ("b",) in answers


def test_schema_free_decision_problems_match_fixed_schema():
    """Section 6: rewritability of the schema-free query coincides with the
    fixed-schema query over sig(O) ∪ sig(q)."""
    omq = example_4_5_omq()
    free = schema_free_variant(omq)
    assert omq_fo_rewritable(free) == omq_fo_rewritable(omq)
    assert omq_datalog_rewritable(free) == omq_datalog_rewritable(omq)


def test_boolean_query_classification():
    omq = OntologyMediatedQuery(
        ontology=example_4_5_omq().ontology,
        query=boolean_atomic_query("HereditaryPredisposition"),
        data_schema=example_4_5_schema(),
    )
    report = classify_omq(omq)
    assert report.is_tractable()
    data = family_instance(2, predisposed_root=True)
    assert omq.certain_answers(data) == {()}
