"""The multi-tenant asyncio frontend: concurrency, faults, snapshots, caching.

The serving frontend multiplexes tenants over shared sessions with
group-commit writes, versioned snapshot reads, and admission control.  The
correctness bar mirrors the streaming suite, lifted to concurrency: every
concurrent read must equal a *serial twin* replaying the same committed
batches in commit order (``replay_commit_log``), and after every fault
storm the shared session must still agree with a from-scratch
recomputation.  Everything runs on plain ``asyncio.run`` — the harness
needs no asyncio pytest plugin.
"""

import asyncio
import random

import pytest

from repro.core import Atom, Fact, Instance, RelationSymbol, Variable
from repro.datalog import DisjunctiveDatalogProgram, Rule, goal_atom
from repro.engine.grounder import ground_program
from repro.obda.applications import serve_frontend_workload
from repro.obs.telemetry import Reservoir, enabled
from repro.planner import (
    PlanCache,
    clear_plan_artifacts,
    plan_program,
    program_identity_key,
)
from repro.service import (
    FaultInjector,
    Frontend,
    FrontendConfig,
    FrontendRejected,
    FrontendWriteFailed,
    ObdaSession,
    ShardedObdaSession,
    evaluate_plan_at,
    from_scratch_answers,
    replay_commit_log,
    validate_explain,
)

A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
EDGE = RelationSymbol("edge", 2)
START = RelationSymbol("start", 1)
REACH = RelationSymbol("reach", 1)
P = RelationSymbol("P", 1)
Q = RelationSymbol("Q", 1)


def _reach_program(tag: str = "x") -> DisjunctiveDatalogProgram:
    """Tier 1 (recursive): goal = reachable from a start via edges.

    ``tag`` alpha-renames the variables, so every call returns a *fresh*
    object that is structurally identical to every other — the shape the
    plan cache must intern to one representative.
    """
    x, y = Variable(f"{tag}0"), Variable(f"{tag}1")
    return DisjunctiveDatalogProgram(
        (
            Rule((Atom(REACH, (x,)),), (Atom(START, (x,)),)),
            Rule((Atom(REACH, (y,)),), (Atom(REACH, (x,)), Atom(EDGE, (x, y)))),
            Rule((goal_atom(x),), (Atom(REACH, (x,)),)),
        )
    )


def _conj_program(tag: str = "x") -> DisjunctiveDatalogProgram:
    """Tier 0 (nonrecursive, disjunction-free): goal(x) <- A(x), B(x)."""
    x = Variable(f"{tag}0")
    return DisjunctiveDatalogProgram(
        (Rule((goal_atom(x),), (Atom(A, (x,)), Atom(B, (x,)))),)
    )


def _disjunctive_program(tag: str = "x") -> DisjunctiveDatalogProgram:
    """Tier 2 (disjunctive): P(x) v Q(x) <- A(x); goal from either."""
    x = Variable(f"{tag}0")
    return DisjunctiveDatalogProgram(
        (
            Rule((Atom(P, (x,)), Atom(Q, (x,))), (Atom(A, (x,)),)),
            Rule((goal_atom(x),), (Atom(P, (x,)),)),
            Rule((goal_atom(x),), (Atom(Q, (x,)),)),
        )
    )


def _universe(size: int = 5) -> list[Fact]:
    domain = [f"e{i}" for i in range(size)]
    facts = [Fact(START, (domain[0],))]
    for element in domain:
        facts.append(Fact(A, (element,)))
        facts.append(Fact(B, (element,)))
    for source, target in zip(domain, domain[1:]):
        facts.append(Fact(EDGE, (source, target)))
    facts.append(Fact(EDGE, (domain[-1], domain[0])))
    return facts


def run(coroutine):
    return asyncio.run(coroutine)


# ---------------------------------------------------------------------------
# Group-commit writes
# ---------------------------------------------------------------------------


def test_group_commit_batches_concurrent_writes():
    async def scenario():
        frontend = Frontend(
            workload={"q": _reach_program()},
            config=FrontendConfig(max_batch=4, max_delay_s=0.002),
        )
        frontend.register_tenant("t", tier=1)
        facts = _universe()
        versions = await asyncio.gather(
            *[frontend.insert("t", [fact]) for fact in facts]
        )
        # every op committed, in far fewer flushes than ops
        assert all(isinstance(version, int) for version in versions)
        log = frontend.commit_log()
        assert 1 <= len(log) < len(facts)
        assert [entry["version"] for entry in log] == list(
            range(1, len(log) + 1)
        )
        assert sum(entry["ops"] for entry in log) == len(facts)
        assert frontend.session().instance == Instance(facts)
        await frontend.close()

    run(scenario())


def test_batch_coalesces_insert_then_delete_to_noop():
    async def scenario():
        frontend = Frontend(
            workload={"q": _conj_program()},
            config=FrontendConfig(max_batch=16, max_delay_s=5.0),
        )
        frontend.register_tenant("t")
        fact = Fact(A, ("e0",))
        keep = Fact(B, ("e0",))
        insert = asyncio.ensure_future(frontend.insert("t", [fact, keep]))
        delete = asyncio.ensure_future(frontend.delete("t", [fact]))
        await asyncio.sleep(0)
        await frontend.drain()
        assert await insert == await delete == 1
        # the insert/delete pair cancelled out; only ``keep`` landed
        assert frontend.session().instance == Instance([keep])
        (entry,) = frontend.commit_log()
        assert entry["inserts"] == (keep,)
        assert entry["deletes"] == ()
        await frontend.close()

    run(scenario())


def test_flush_reasons_size_and_deadline():
    async def scenario():
        frontend = Frontend(
            workload={"q": _conj_program()},
            config=FrontendConfig(max_batch=2, max_delay_s=0.01),
        )
        frontend.register_tenant("t")
        # size-triggered: two ops fill the batch
        await asyncio.gather(
            frontend.insert("t", [Fact(A, ("e0",))]),
            frontend.insert("t", [Fact(B, ("e0",))]),
        )
        # deadline-triggered: a lone op must not wait for a sibling
        await frontend.insert("t", [Fact(A, ("e1",))])
        report = frontend.explain()["frontend"]["batching"]
        assert report["flushes"] == 2
        assert report["reasons"]["size"] == 1
        assert report["reasons"]["deadline"] == 1
        await frontend.close()

    run(scenario())


# ---------------------------------------------------------------------------
# Satellite 1: randomized multi-tenant interleaving vs. the serial twin
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(4))
def test_randomized_interleaving_matches_serial_twin(seed):
    async def scenario():
        frontend = Frontend(
            config=FrontendConfig(max_batch=4, max_delay_s=0.001, max_pending=64)
        )
        tenants = []
        for index in range(6):
            name = f"t{index}"
            maker = _reach_program if index % 2 == 0 else _conj_program
            frontend.register_tenant(
                name, workload={"q": maker(f"v{index}_")}, tier=1
            )
            tenants.append(name)
        # structurally identical workloads collapsed into two groups
        assert frontend.group_count == 2
        universe = _universe(5)
        reads = []

        async def tenant_task(name, task_rng):
            for _ in range(10):
                roll = task_rng.random()
                if roll < 0.45:
                    batch = task_rng.sample(universe, task_rng.randint(1, 3))
                    await frontend.insert(name, batch)
                elif roll < 0.60:
                    batch = task_rng.sample(universe, task_rng.randint(1, 2))
                    await frontend.delete(name, batch)
                else:
                    reads.append(await frontend.query(name, "q"))
                await asyncio.sleep(task_rng.random() * 0.002)

        await asyncio.gather(
            *(
                tenant_task(name, random.Random(seed * 100 + index))
                for index, name in enumerate(tenants)
            )
        )
        await frontend.drain()
        assert reads, "the random stream should include reads"
        # answer-for-answer: every read equals the serial twin at its version
        for representative in ("t0", "t1"):
            session = frontend.session(representative)
            log = frontend.commit_log(representative)
            group_reads = [
                read
                for read in reads
                if frontend.session(read.tenant) is session
            ]
            versions = {read.version for read in group_reads} | {len(log)}
            twin = replay_commit_log(
                frontend.programs(representative), log, versions=versions
            )
            for read in group_reads:
                assert read.answers == twin[read.version]["q"], (
                    f"read at version {read.version} diverged from the twin"
                )
            # the final committed state agrees with the twin and with a
            # from-scratch recomputation over the live instance
            final = session.certain_answers("q")
            assert final == twin[len(log)]["q"]
            assert final == from_scratch_answers(session, "q")
        await frontend.close()

    run(scenario())


# ---------------------------------------------------------------------------
# Satellite 2: fault injection
# ---------------------------------------------------------------------------


def test_injected_flush_fault_is_all_or_nothing():
    async def scenario():
        faults = FaultInjector(fail_flushes={1})
        frontend = Frontend(
            workload={"q": _reach_program()},
            config=FrontendConfig(max_batch=8, max_delay_s=5.0),
            faults=faults,
        )
        frontend.register_tenant("t")
        baseline = [Fact(START, ("e0",)), Fact(EDGE, ("e0", "e1"))]
        writers = [
            asyncio.ensure_future(frontend.insert("t", [fact]))
            for fact in baseline
        ]
        writers.append(
            asyncio.ensure_future(frontend.delete("t", [Fact(A, ("e9",))]))
        )
        await asyncio.sleep(0)
        await frontend.drain()
        outcomes = await asyncio.gather(*writers, return_exceptions=True)
        # the whole batch failed together, with a rationale
        assert all(
            isinstance(outcome, FrontendWriteFailed) for outcome in outcomes
        )
        assert "rolled back" in str(outcomes[0])
        assert faults.injected == 1
        # all-or-nothing: no partial state, no version advance
        assert frontend.version() == 0
        assert frontend.commit_log() == ()
        assert frontend.session().instance == Instance([])
        # the storm over, the next batch commits cleanly
        version = await frontend.insert("t", baseline)
        await frontend.drain()
        assert version == 1
        session = frontend.session()
        assert session.instance == Instance(baseline)
        assert session.certain_answers("q") == from_scratch_answers(session, "q")
        report = frontend.explain()["frontend"]["batching"]
        assert report["rollbacks"] == 1
        await frontend.close()

    run(scenario())


def test_cancelled_writer_withdraws_its_op():
    async def scenario():
        frontend = Frontend(
            workload={"q": _conj_program()},
            config=FrontendConfig(max_batch=16, max_delay_s=5.0),
        )
        frontend.register_tenant("t")
        keep_a = asyncio.ensure_future(frontend.insert("t", [Fact(A, ("e0",))]))
        doomed = asyncio.ensure_future(frontend.insert("t", [Fact(A, ("e1",))]))
        keep_b = asyncio.ensure_future(frontend.insert("t", [Fact(B, ("e0",))]))
        await asyncio.sleep(0)  # let all three enqueue
        doomed.cancel()
        await frontend.drain()
        assert await keep_a == await keep_b == 1
        with pytest.raises(asyncio.CancelledError):
            await doomed
        # the cancelled op never landed; the rest of the batch did
        assert frontend.session().instance == Instance(
            [Fact(A, ("e0",)), Fact(B, ("e0",))]
        )
        assert frontend.explain()["frontend"]["batching"]["withdrawn"] == 1
        await frontend.close()

    run(scenario())


def test_cancelled_reader_leaves_frontend_serving():
    async def scenario():
        frontend = Frontend(
            workload={"q": _conj_program()},
            faults=FaultInjector(query_delay_s=0.05),
        )
        frontend.register_tenant("t")
        await frontend.insert("t", [Fact(A, ("e0",)), Fact(B, ("e0",))])
        await frontend.drain()
        reader = asyncio.ensure_future(frontend.query("t", "q"))
        await asyncio.sleep(0.01)  # mid-query: parked on its delay
        assert frontend.queue_depth() == 1
        reader.cancel()
        with pytest.raises(asyncio.CancelledError):
            await reader
        assert frontend.queue_depth() == 0
        result = await frontend.query("t", "q")
        assert result.answers == {("e0",)}
        await frontend.close()

    run(scenario())


def test_per_request_timeouts():
    async def scenario():
        frontend = Frontend(
            workload={"q": _conj_program()},
            config=FrontendConfig(max_batch=64, max_delay_s=5.0),
            faults=FaultInjector(query_delay_s=0.2),
        )
        frontend.register_tenant("t")
        with pytest.raises(TimeoutError):
            await frontend.query("t", "q", timeout=0.01)
        # a timed-out write withdraws its op: nothing commits at drain
        with pytest.raises(TimeoutError):
            await frontend.insert("t", [Fact(A, ("e0",))], timeout=0.01)
        await frontend.drain()
        assert frontend.version() == 0
        assert frontend.session().instance == Instance([])
        tenant = frontend.explain()["frontend"]["tenants"]["t"]
        assert tenant["timeouts"] == 2
        await frontend.close()

    run(scenario())


def test_admission_storm_sheds_tier2_first_with_rationales():
    async def scenario():
        faults = FaultInjector(query_delay_s=0.05)
        frontend = Frontend(
            workload={"q": _conj_program()},
            config=FrontendConfig(
                max_batch=4, max_delay_s=0.001, max_pending=4, degrade_limit=2
            ),
            faults=faults,
        )
        frontend.register_tenant("gold", tier=1)
        frontend.register_tenant("best-effort", tier=2)
        await frontend.insert("gold", [Fact(A, ("e0",)), Fact(B, ("e0",))])
        await frontend.drain()
        warm = await frontend.query("best-effort", "q")  # caches answers
        assert not warm.degraded
        # hold the queue at the degrade limit with slow tier-1 readers
        holders = [
            asyncio.ensure_future(frontend.query("gold", "q"))
            for _ in range(2)
        ]
        await asyncio.sleep(0.01)
        assert frontend.queue_depth() == 2
        # tier-2 read degrades to the cached answers instead of rejecting
        degraded = await frontend.query("best-effort", "q")
        assert degraded.degraded
        assert degraded.answers == warm.answers
        # tier-2 writes shed outright, with a rationale
        with pytest.raises(FrontendRejected) as shed:
            await frontend.insert("best-effort", [Fact(A, ("e9",))])
        assert "degrade limit" in shed.value.rationale
        # tier-1 traffic still admitted until the hard cap...
        holders += [
            asyncio.ensure_future(frontend.query("gold", "q"))
            for _ in range(2)
        ]
        await asyncio.sleep(0.01)
        assert frontend.queue_depth() == 4
        with pytest.raises(FrontendRejected) as hard:
            await frontend.query("gold", "q")
        assert "max_pending" in hard.value.rationale
        for result in await asyncio.gather(*holders):
            assert result.answers == warm.answers
        # post-storm: consistent state, shed counters and rationales surfaced
        session = frontend.session()
        assert session.certain_answers("q") == from_scratch_answers(session, "q")
        report = frontend.explain()
        assert not validate_explain(report)
        admission = report["frontend"]["admission"]
        assert admission["rejected"] == 2
        assert admission["degraded"] == 1
        assert admission["by_tier"] == {1: 1, 2: 1}
        tenants = report["frontend"]["tenants"]
        assert "degrade limit" in tenants["best-effort"]["last_rejection"]
        assert "max_pending" in tenants["gold"]["last_rejection"]
        await frontend.close()

    run(scenario())


# ---------------------------------------------------------------------------
# Satellite 3: snapshot isolation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "maker", [_conj_program, _reach_program, _disjunctive_program]
)
def test_snapshot_pinned_at_version_n_survives_flushes(maker):
    async def scenario():
        frontend = Frontend(
            workload={"q": maker()},
            config=FrontendConfig(max_batch=2, max_delay_s=0.001),
        )
        frontend.register_tenant("t")
        base = [fact for fact in _universe(4) if fact.relation != EDGE]
        await frontend.insert("t", base)
        await frontend.drain()
        session = frontend.session()
        pinned = session.snapshot(version=frontend.version())
        before = pinned.certain_answers("q")
        # concurrent flushes advance the session from N to N+k
        for extra in ("x0", "x1", "x2"):
            await frontend.insert(
                "t",
                [
                    Fact(A, (extra,)),
                    Fact(B, (extra,)),
                    Fact(EDGE, ("e0", extra)),
                ],
            )
        await frontend.drain()
        assert frontend.version() > pinned.version
        assert session.instance is not pinned.instance
        # during: the pinned reader still sees exactly version N
        assert pinned.certain_answers("q") == before
        # after: a fresh snapshot sees the new state, the pinned one never does
        fresh = await frontend.query("t", "q")
        assert fresh.version == frontend.version()
        assert fresh.answers > before
        assert pinned.certain_answers("q") == before
        # the pinned answers are exact at N: the serial twin agrees
        twin = replay_commit_log(
            frontend.programs(),
            frontend.commit_log(),
            versions={pinned.version},
        )
        assert twin[pinned.version]["q"] == before
        await frontend.close()

    run(scenario())


@pytest.mark.parametrize(
    "maker", [_conj_program, _reach_program, _disjunctive_program]
)
def test_snapshot_lagging_recompute_matches_ground_truth(maker):
    # A snapshot read *after* the session moved on exercises the stateless
    # per-tier recompute path; it must equal grounding the pinned instance.
    session = ObdaSession({"q": maker()})
    base = [fact for fact in _universe(4) if fact.relation != EDGE]
    session.insert_facts(base)
    snapshot = session.snapshot()
    pinned_instance = snapshot.instance
    session.insert_facts([Fact(A, ("y0",)), Fact(B, ("y0",))])
    session.delete_facts([base[1]])
    assert not snapshot.is_current
    expected = ground_program(
        session.program("q"), pinned_instance
    ).certain_answers()
    assert snapshot.certain_answers("q") == expected
    assert snapshot.is_certain(next(iter(expected)), "q")


def test_sharded_session_snapshot_isolation():
    session = ShardedObdaSession({"q": _reach_program()}, shards=2)
    facts = [fact for fact in _universe(5) if fact.relation in (START, EDGE)]
    session.insert_facts(facts)
    snapshot = session.snapshot()
    before = snapshot.certain_answers("q")
    assert before == session.certain_answers("q")
    session.delete_facts([facts[1]])
    session.insert_facts([Fact(EDGE, ("e9", "e0"))])
    assert snapshot.certain_answers("q") == before
    expected = ground_program(
        session.program("q"), snapshot.instance
    ).certain_answers()
    assert before == expected


def test_evaluate_plan_at_is_stateless_per_tier():
    instance = Instance([fact for fact in _universe(4)])
    for maker in (_conj_program, _reach_program, _disjunctive_program):
        program = maker()
        plan = plan_program(program)
        expected = ground_program(program, instance).certain_answers()
        assert evaluate_plan_at(plan, instance) == expected
        # evaluating an older instance later must not see newer facts
        smaller = Instance([])
        assert evaluate_plan_at(plan, smaller) == ground_program(
            program, smaller
        ).certain_answers()


# ---------------------------------------------------------------------------
# Satellite 4: the LRU'd cross-tenant plan cache
# ---------------------------------------------------------------------------


def test_program_identity_key_canonicalizes_structure():
    # alpha-renaming and rule order do not matter
    assert program_identity_key(_reach_program("a")) == program_identity_key(
        _reach_program("b")
    )
    reordered = DisjunctiveDatalogProgram(
        tuple(reversed(_reach_program("c").rules))
    )
    assert program_identity_key(reordered) == program_identity_key(
        _reach_program("d")
    )
    # different structure does
    assert program_identity_key(_conj_program()) != program_identity_key(
        _reach_program()
    )

    # constants compare by equality, never by repr
    class Marker:
        def __init__(self, tag):
            self.tag = tag

        def __repr__(self):
            return "marker"

        def __eq__(self, other):
            return isinstance(other, Marker) and other.tag == self.tag

        def __hash__(self):
            return hash(("marker", self.tag))

    def with_constant(constant):
        x = Variable("x")
        return DisjunctiveDatalogProgram(
            (Rule((goal_atom(x),), (Atom(EDGE, (x, constant)),)),)
        )

    assert program_identity_key(with_constant(Marker(1))) == (
        program_identity_key(with_constant(Marker(1)))
    )
    assert program_identity_key(with_constant(Marker(1))) != (
        program_identity_key(with_constant(Marker(2)))
    )


def test_plan_cache_lru_eviction_clears_artifacts():
    programs = [_conj_program(), _reach_program(), _disjunctive_program()]
    for program in programs:
        plan_program(program)
        assert hasattr(program, "_planner_syntactic_plans")
    cache = PlanCache(capacity=2)
    cache.intern(programs[0])
    cache.intern(programs[1])
    cache.intern(programs[0])  # touch: 0 becomes most recent
    cache.intern(programs[2])  # evicts 1, the least recently used
    assert cache.evictions == 1
    assert not hasattr(programs[1], "_planner_syntactic_plans")
    assert hasattr(programs[0], "_planner_syntactic_plans")
    assert programs[0] in cache and programs[2] in cache
    assert programs[1] not in cache
    # eviction-then-recompile: same routing, same answers
    instance = Instance(_universe(4))
    replanned = plan_program(programs[1])
    assert replanned.tier == 1
    assert evaluate_plan_at(replanned, instance) == ground_program(
        programs[1], instance
    ).certain_answers()


def test_clear_plan_artifacts_reports_cleared_names():
    program = _conj_program()
    plan_program(program)
    cleared = clear_plan_artifacts(program)
    assert "_planner_syntactic_plans" in cleared
    assert clear_plan_artifacts(program) == ()  # idempotent


def test_cross_tenant_cache_hits_via_existing_counters():
    async def scenario():
        with enabled() as tel:
            frontend = Frontend()
            frontend.register_tenant("t1", workload={"q": _reach_program("m")})
            hits_before = tel.counter("planner.plan_cache_hits")
            frontend.register_tenant("t2", workload={"q": _reach_program("n")})
            # the structurally identical workload interned to the shared
            # representative and hit the per-program plan cache
            assert tel.counter("planner.program_cache_hits") == 1
            assert tel.counter("planner.plan_cache_hits") > hits_before
            assert frontend.group_count == 1
            assert frontend.session("t1") is frontend.session("t2")
            assert frontend.plan_cache.hits == 1
            # the shared session serves both tenants' data and reads
            await frontend.insert(
                "t1", [Fact(START, ("e0",)), Fact(EDGE, ("e0", "e1"))]
            )
            await frontend.drain()
            t2_read = await frontend.query("t2", "q")
            assert t2_read.answers == {("e0",), ("e1",)}
            await frontend.close()

    run(scenario())


def test_plan_cache_eviction_then_reregistration_same_answers():
    async def scenario():
        config = FrontendConfig(plan_cache_capacity=1, max_delay_s=0.001)
        frontend = Frontend(config=config)
        frontend.register_tenant("t1", workload={"q": _reach_program("p")})
        await frontend.insert(
            "t1", [Fact(START, ("e0",)), Fact(EDGE, ("e0", "e1"))]
        )
        await frontend.drain()
        first = await frontend.query("t1", "q")
        # a different workload evicts the reach representative (capacity 1)
        frontend.register_tenant("t2", workload={"q": _conj_program("p")})
        assert frontend.plan_cache.evictions == 1
        # re-registering re-interns a fresh representative: a new group,
        # recompiled from scratch — with identical answers for equal data
        frontend.register_tenant("t3", workload={"q": _reach_program("r")})
        assert frontend.group_count == 3
        await frontend.insert(
            "t3", [Fact(START, ("e0",)), Fact(EDGE, ("e0", "e1"))]
        )
        await frontend.drain()
        again = await frontend.query("t3", "q")
        assert again.answers == first.answers
        await frontend.close()

    run(scenario())


# ---------------------------------------------------------------------------
# explain contract, entry point, reservoir
# ---------------------------------------------------------------------------


def test_explain_frontend_block_validates_and_rejects_malformed():
    async def scenario():
        frontend = Frontend(workload={"q": _conj_program()})
        frontend.register_tenant("t", tier=2)
        await frontend.insert("t", [Fact(A, ("e0",)), Fact(B, ("e0",))])
        await frontend.drain()
        await frontend.query("t", "q")
        report = frontend.explain()
        assert not validate_explain(report)
        block = report["frontend"]
        assert block["snapshots"]["reads"] == 1
        assert block["tenants"]["t"]["tier"] == 2
        assert block["tenants"]["t"]["p50_s"] is not None
        # the validator knows the shape: break it and it must complain
        del block["admission"]["max_pending"]
        assert any(
            "max_pending" in problem for problem in validate_explain(report)
        )
        del report["frontend"]["snapshots"]
        assert any(
            "snapshots" in problem for problem in validate_explain(report)
        )
        await frontend.close()

    run(scenario())


def test_serve_frontend_workload_entry_point():
    async def scenario():
        frontend = serve_frontend_workload(
            {"q": _reach_program()},
            initial_instance=Instance([Fact(START, ("e0",))]),
            tenants=[("gold", 1), ("best-effort", 2)],
        )
        assert frontend.tenant_count == 2
        version = await frontend.insert("gold", [Fact(EDGE, ("e0", "e1"))])
        await frontend.drain()
        assert version == 1
        result = await frontend.query("best-effort", "q")
        assert result.answers == {("e0",), ("e1",)}
        assert not validate_explain(frontend.explain())
        await frontend.close()

    run(scenario())


def test_reservoir_quantiles():
    reservoir = Reservoir(capacity=200)
    assert reservoir.quantile(0.5) is None
    for value in range(1, 101):
        reservoir.observe(float(value))
    assert reservoir.quantile(0.5) == 50.0
    assert reservoir.quantile(0.99) == 99.0
    assert reservoir.quantile(1.0) == 100.0
    assert reservoir.quantile(0.0) == 1.0
    # bounded: old samples age out
    small = Reservoir(capacity=10)
    for value in range(100):
        small.observe(float(value))
    assert len(small) == 10
    assert small.quantile(0.0) == 90.0
    with pytest.raises(ValueError):
        reservoir.quantile(1.5)
