"""Tests for Theorem 4.2 (GMSNP ≡ frontier-guarded DDlog) and Theorem 4.3
(GMSNP ≡ MMSNP2)."""

import pytest

from repro.core import Fact, Instance, RelationSymbol
from repro.core.cq import var
from repro.datalog import evaluate_boolean
from repro.mmsnp import (
    FactSOAtom,
    Implication,
    MMSNPFormula,
    SchemaAtom,
    SOAtom,
    SOVariable,
)
from repro.translations import (
    close_under_identification,
    frontier_ddlog_to_gmsnp,
    gmsnp_to_frontier_ddlog,
    gmsnp_to_mmsnp2,
    mmsnp2_to_gmsnp,
    mmsnp_as_gmsnp,
)
from repro.workloads.csp_zoo import EDGE, cycle_graph

x, y = var("x"), var("y")
X = SOVariable("X", 1)


def two_colourability_formula() -> MMSNPFormula:
    return MMSNPFormula(
        [X],
        [
            Implication(
                (SchemaAtom(EDGE, (x, y)), SOAtom(X, (x,)), SOAtom(X, (y,))), ()
            ),
            Implication(
                (SchemaAtom(EDGE, (x, y)),), (SOAtom(X, (x,)), SOAtom(X, (y,)))
            ),
        ],
        [],
    )


def binary_orientation_formula() -> MMSNPFormula:
    """A genuinely non-monadic GMSNP sentence: every edge can be marked or
    unmarked, but a marked edge must not coexist with a marked reverse edge."""
    marked = SOVariable("M", 2)
    return MMSNPFormula(
        [marked],
        [
            Implication((SchemaAtom(EDGE, (x, y)),), (SOAtom(marked, (x, y)),)),
            Implication(
                (
                    SchemaAtom(EDGE, (x, y)),
                    SOAtom(marked, (x, y)),
                    SOAtom(marked, (y, x)),
                ),
                (),
            ),
        ],
        [],
    )


# -- Theorem 4.2 ------------------------------------------------------------------------


def test_gmsnp_classification():
    assert two_colourability_formula().is_gmsnp()
    assert binary_orientation_formula().is_gmsnp()
    assert not binary_orientation_formula().is_mmsnp()
    assert mmsnp_as_gmsnp(two_colourability_formula()).is_gmsnp()


def test_gmsnp_to_frontier_ddlog_monadic_agrees_on_cycles():
    formula = two_colourability_formula()
    program = gmsnp_to_frontier_ddlog(formula)
    assert program.is_frontier_guarded()
    assert program.is_monadic()
    for length in (3, 4, 5, 6):
        graph = cycle_graph(length)
        assert evaluate_boolean(program, graph) == (not formula.holds(graph))


def test_gmsnp_to_frontier_ddlog_binary_so_variable():
    formula = binary_orientation_formula()
    program = gmsnp_to_frontier_ddlog(formula)
    assert program.is_frontier_guarded()
    assert not program.is_monadic()
    two_cycle = Instance([Fact(EDGE, ("a", "b")), Fact(EDGE, ("b", "a"))])
    one_edge = Instance([Fact(EDGE, ("a", "b"))])
    assert evaluate_boolean(program, two_cycle) == (not formula.holds(two_cycle))
    assert evaluate_boolean(program, one_edge) == (not formula.holds(one_edge))


def test_frontier_ddlog_round_trip_preserves_answers():
    formula = two_colourability_formula()
    program = gmsnp_to_frontier_ddlog(formula)
    back = frontier_ddlog_to_gmsnp(program)
    assert back.is_gmsnp()
    for length in (3, 4):
        graph = cycle_graph(length)
        assert back.holds(graph) == formula.holds(graph)


def test_non_guarded_formula_rejected():
    unguarded = MMSNPFormula(
        [SOVariable("Z", 2)],
        [Implication((SchemaAtom(EDGE, (x, x)),), (SOAtom(SOVariable("Z", 2), (x, y)),))],
        [],
    )
    with pytest.raises(ValueError):
        gmsnp_to_frontier_ddlog(unguarded)


def test_frontier_ddlog_to_gmsnp_requires_frontier_guardedness():
    from repro.core.cq import Atom
    from repro.datalog import DisjunctiveDatalogProgram, Rule, goal_atom

    P = RelationSymbol("P", 2)
    bad = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (x, y)),), (Atom(EDGE, (x, x)), Atom(EDGE, (y, y)))),
            Rule((goal_atom(),), (Atom(P, (x, y)),)),
        ]
    )
    assert not bad.is_frontier_guarded()
    with pytest.raises(ValueError):
        frontier_ddlog_to_gmsnp(bad)


# -- Theorem 4.3 -------------------------------------------------------------------------


def edge_marking_mmsnp2_formula() -> MMSNPFormula:
    """An MMSNP2 sentence: every edge fact is marked or its source is marked,
    and a marked edge may not leave a marked element."""
    marker = SOVariable("M", 1)
    return MMSNPFormula(
        [marker],
        [
            Implication(
                (SchemaAtom(EDGE, (x, y)),),
                (FactSOAtom(marker, EDGE, (x, y)), SOAtom(marker, (x,))),
            ),
            Implication(
                (
                    SchemaAtom(EDGE, (x, y)),
                    FactSOAtom(marker, EDGE, (x, y)),
                    SOAtom(marker, (x,)),
                ),
                (),
            ),
        ],
        [],
    )


def test_mmsnp2_to_gmsnp_preserves_semantics():
    formula = edge_marking_mmsnp2_formula()
    assert formula.is_mmsnp2()
    translated = mmsnp2_to_gmsnp(formula)
    assert translated.is_gmsnp()
    assert not translated.uses_fact_atoms()
    loop = Instance([Fact(EDGE, ("a", "a"))])
    edge = Instance([Fact(EDGE, ("a", "b"))])
    two_cycle = Instance([Fact(EDGE, ("a", "b")), Fact(EDGE, ("b", "a"))])
    for instance in (loop, edge, two_cycle):
        assert formula.holds(instance) == translated.holds(instance)


def test_gmsnp_to_mmsnp2_produces_mmsnp2():
    formula = binary_orientation_formula()
    translated = gmsnp_to_mmsnp2(formula)
    assert translated.is_monadic()
    assert translated.is_mmsnp2()
    assert translated.uses_fact_atoms()


def test_gmsnp_to_mmsnp2_agrees_on_small_graphs():
    formula = binary_orientation_formula()
    translated = gmsnp_to_mmsnp2(close_under_identification(formula))
    one_edge = Instance([Fact(EDGE, ("a", "b"))])
    two_cycle = Instance([Fact(EDGE, ("a", "b")), Fact(EDGE, ("b", "a"))])
    loop = Instance([Fact(EDGE, ("a", "a"))])
    for instance in (one_edge, two_cycle, loop):
        assert translated.holds(instance) == formula.holds(instance)


def test_close_under_identification_adds_collapsed_implications():
    formula = binary_orientation_formula()
    closed = close_under_identification(formula)
    assert len(closed.implications) > len(formula.implications)
    # Closure preserves semantics (identified implications are consequences).
    loop = Instance([Fact(EDGE, ("a", "a"))])
    assert closed.holds(loop) == formula.holds(loop)
