"""Tests for the schema-free constructions of Section 6."""

import pytest

from repro.core import Fact, Instance, RelationSymbol
from repro.core.cq import atomic_query
from repro.core.homomorphism import has_homomorphism
from repro.dl import ConceptInclusion, ConceptName, Exists, Ontology, Role
from repro.dl.concepts import Top
from repro.obda import (
    containment_to_schema_free,
    csp_to_schema_free_omq,
    emptiness_axioms,
    omq_contained_in_bounded,
    shield_concept_names,
)
from repro.omq import OntologyMediatedQuery
from repro.workloads.csp_zoo import EDGE, cycle_graph, two_colourability_template


# -- Theorem 6.1 -----------------------------------------------------------------------


def test_schema_free_csp_encoding_matches_template_on_plain_data():
    encoding = csp_to_schema_free_omq(two_colourability_template())
    assert encoding.omq.schema_free
    for data in (cycle_graph(3), cycle_graph(4), Instance([Fact(EDGE, ("a", "a"))])):
        expected = not has_homomorphism(data, encoding.template)
        answer = encoding.omq.certain_answers(data, engine="bounded")
        assert (answer == frozenset({()})) == expected


def test_schema_free_csp_encoding_ignores_working_symbols_in_data():
    """Fact 1 of Theorem 6.1: data about the shielded working symbols cannot
    change the answer, because the compound concepts re-interpret freely."""
    encoding = csp_to_schema_free_omq(two_colourability_template())
    noisy = cycle_graph(4).with_facts(
        [
            Fact(RelationSymbol("A_elem_0", 1), ("v0",)),
            Fact(RelationSymbol("R_elem_1", 2), ("v1", "v2")),
        ]
    )
    assert encoding.omq.certain_answers(noisy, engine="bounded") == frozenset()
    assert encoding.reduces_like_template(noisy)


def test_schema_free_csp_encoding_asserted_goal_facts():
    """If the data itself asserts the goal concept, the query trivially holds."""
    encoding = csp_to_schema_free_omq(two_colourability_template())
    data = cycle_graph(4).with_facts([Fact(RelationSymbol("A", 1), ("v0",))])
    assert encoding.omq.certain_answers(data, engine="bounded") == frozenset({()})


# -- Theorem 6.2 -----------------------------------------------------------------------


def test_emptiness_axioms_cover_unary_and_binary_symbols():
    axioms = emptiness_axioms([RelationSymbol("A", 1), RelationSymbol("R", 2)])
    assert len(axioms) == 2
    with pytest.raises(ValueError):
        emptiness_axioms([RelationSymbol("T", 3)])


def _simple_omq(goal: str, schema_names=("Base",)) -> OntologyMediatedQuery:
    from repro.core.schema import Schema

    axioms = [ConceptInclusion(ConceptName("Base"), ConceptName(goal))]
    schema = Schema([RelationSymbol(name, 1) for name in schema_names])
    return OntologyMediatedQuery(
        ontology=Ontology(axioms), query=atomic_query(goal), data_schema=schema
    )


def test_containment_to_schema_free_preserves_containment_direction():
    first = _simple_omq("Derived")
    second = _simple_omq("Derived")
    sf_first, sf_second = containment_to_schema_free(first, second)
    assert sf_first.schema_free and sf_second.schema_free
    # The fixed-schema queries are equivalent, and so are the schema-free ones
    # on data over the shared schema.
    assert omq_contained_in_bounded(first, second, max_elements=2, max_facts=2)
    data = Instance([Fact(RelationSymbol("Base", 1), ("a",))])
    assert sf_first.certain_answers(data, engine="bounded") == sf_second.certain_answers(
        data, engine="bounded"
    )


def test_containment_to_schema_free_adds_emptiness_axioms():
    first = _simple_omq("Derived")
    second = OntologyMediatedQuery(
        ontology=Ontology([]),
        query=atomic_query("Base"),
        data_schema=first.data_schema,
    )
    _sf_first, sf_second = containment_to_schema_free(first, second)
    assert len(sf_second.ontology) > len(second.ontology)


# -- Theorem 6.3 -----------------------------------------------------------------------


def test_shield_concept_names_rewrites_occurrences():
    ontology = Ontology(
        [
            ConceptInclusion(ConceptName("E"), ConceptName("F")),
            ConceptInclusion(Exists(Role("S"), ConceptName("E")), ConceptName("E")),
        ]
    )
    shielded = shield_concept_names(ontology, {"E"})
    rendered = [str(axiom) for axiom in shielded]
    assert any("∀R_E.E" in text for text in rendered)
    # The untouched concept name F survives unshielded.
    assert any("F" in text and "∀R_F" not in text for text in rendered)


def test_shield_concept_names_keeps_other_axiom_kinds():
    from repro.dl import TransitiveRole

    ontology = Ontology(
        [ConceptInclusion(Top(), ConceptName("E")), TransitiveRole(Role("S"))]
    )
    shielded = shield_concept_names(ontology, {"E"})
    assert len(shielded) == 2
