"""Tests for ontology-mediated queries and the certain-answer engines,
including cross-checks between the complete engines and the bounded reference
engine on the paper's worked examples."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Atom, ConjunctiveQuery, Fact, Instance, RelationSymbol, Schema, Variable, atomic_query
from repro.dl import ConceptInclusion, ConceptName, Exists, Ontology, Role
from repro.omq import ForestEngine, OntologyMediatedQuery
from repro.workloads.medical import (
    example_2_1_omq,
    example_2_2_q1_omq,
    example_2_2_q2_omq,
    example_4_5_omq,
    family_instance,
    medical_ontology,
    medical_schema,
    patient_instance,
)


def test_example_2_1_certain_answers():
    """The paper's Example 2.1: both patients are certain answers."""
    omq = example_2_1_omq()
    answers = omq.certain_answers(patient_instance())
    assert answers == {("patient1",), ("patient2",)}


def test_example_2_2_q1_is_a_ucq():
    """Example 2.2: q1 returns exactly the asserted Lyme/Listeriosis findings."""
    omq = example_2_2_q1_omq()
    assert omq.certain_answers(patient_instance()) == {("may7diag2",)}


def test_example_2_2_q2_recursion():
    """Example 2.2: the hereditary predisposition propagates down the chain."""
    omq = example_2_2_q2_omq()
    with_marker = family_instance(3, predisposed_root=True)
    without_marker = family_instance(3, predisposed_root=False)
    assert omq.certain_answers(with_marker) == {
        (f"person{i}",) for i in range(4)
    }
    assert omq.certain_answers(without_marker) == frozenset()


def test_example_4_5_matches_paper():
    omq = example_4_5_omq()
    data = family_instance(2, predisposed_root=True)
    assert omq.certain_answers(data) == {("person0",), ("person1",), ("person2",)}


def test_omq_language_name_and_size():
    omq = example_2_1_omq()
    assert omq.omq_language() == "(ALC, CQ)"
    assert example_2_2_q2_omq().omq_language() == "(ALC, AQ)"
    assert omq.size() > 0


def test_instance_schema_check():
    omq = example_4_5_omq()
    foreign = Instance([Fact(RelationSymbol("Unknown", 1), ("a",))])
    with pytest.raises(ValueError):
        omq.certain_answers(foreign)
    # the schema-free variant accepts it
    from repro.obda import schema_free_variant

    assert schema_free_variant(omq).certain_answers(foreign) == frozenset()


def test_engines_agree_on_medical_example():
    omq = example_2_1_omq()
    data = patient_instance()
    forest = omq.certain_answers(data, engine="forest")
    bounded = omq.certain_answers(data, engine="bounded")
    assert forest == bounded == {("patient1",), ("patient2",)}


def test_engines_agree_on_atomic_example():
    omq = example_4_5_omq()
    data = family_instance(2, predisposed_root=True)
    atomic = omq.certain_answers(data, engine="atomic")
    bounded = omq.certain_answers(data, engine="bounded")
    forest = omq.certain_answers(data, engine="forest")
    assert atomic == bounded == forest


def test_inconsistent_data_returns_all_tuples():
    bottom = ConceptInclusion(
        ConceptName("LymeDisease"), Exists(Role("HasParent"), ConceptName("X"))
    )
    ontology = Ontology(
        list(medical_ontology().axioms)
        + [
            ConceptInclusion(
                ConceptName("Listeriosis") & ConceptName("LymeDisease"),
                ConceptName("X") & ~ConceptName("X"),
            )
        ]
    )
    del bottom
    omq = OntologyMediatedQuery(
        ontology=ontology,
        query=atomic_query("BacterialInfection"),
        data_schema=medical_schema(),
    )
    data = Instance(
        [
            Fact(RelationSymbol("Listeriosis", 1), ("p",)),
            Fact(RelationSymbol("LymeDisease", 1), ("p",)),
        ]
    )
    assert omq.certain_answers(data) == {("p",)}


def test_disjunctive_ontology_certain_answers():
    """Disjunction: neither disjunct is certain, but a query covering both is."""
    ontology = Ontology(
        [ConceptInclusion(ConceptName("A"), ConceptName("B") | ConceptName("C"))]
    )
    schema = Schema.binary(["A", "B", "C"], [])
    data = Instance([Fact(RelationSymbol("A", 1), ("a",))])
    for name, expected in [("B", frozenset()), ("C", frozenset())]:
        omq = OntologyMediatedQuery(
            ontology=ontology, query=atomic_query(name), data_schema=schema
        )
        assert omq.certain_answers(data) == expected
    x = Variable("x")
    either = OntologyMediatedQuery(
        ontology=ontology,
        query=ConjunctiveQuery((x,), [Atom(RelationSymbol("B", 1), (x,))]),
        data_schema=schema,
    )
    # As a UCQ covering both disjuncts the answer is certain.
    from repro.core import UnionOfConjunctiveQueries

    both = OntologyMediatedQuery(
        ontology=ontology,
        query=UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery((x,), [Atom(RelationSymbol("B", 1), (x,))]),
                ConjunctiveQuery((x,), [Atom(RelationSymbol("C", 1), (x,))]),
            ]
        ),
        data_schema=schema,
    )
    assert either.certain_answers(data) == frozenset()
    assert both.certain_answers(data) == {("a",)}


def test_ucq_with_existential_tree_part():
    """A query that can only be satisfied inside the anonymous (tree) part is
    certain even though no data element witnesses it."""
    ontology = Ontology(
        [ConceptInclusion(ConceptName("A"), Exists(Role("R"), ConceptName("B")))]
    )
    schema = Schema.binary(["A", "B"], ["R"])
    x, y = Variable("x"), Variable("y")
    query = ConjunctiveQuery(
        (), [Atom(RelationSymbol("R", 2), (x, y)), Atom(RelationSymbol("B", 1), (y,))]
    )
    omq = OntologyMediatedQuery(ontology=ontology, query=query, data_schema=schema)
    data = Instance([Fact(RelationSymbol("A", 1), ("a",))])
    assert omq.certain_answers(data) == {()}
    # ... but asking for a *named* witness of B is not certain.
    named = OntologyMediatedQuery(
        ontology=ontology, query=atomic_query("B"), data_schema=schema
    )
    assert named.certain_answers(data) == frozenset()


def test_forest_engine_consistency_check():
    omq = example_2_1_omq()
    engine = ForestEngine(omq)
    assert engine.is_consistent(patient_instance())


def test_bounded_engine_supports_functional_roles():
    from repro.workloads.separations import (
        functional_ok_instance,
        functional_role_omq,
        functional_violation_instance,
    )

    omq = functional_role_omq()
    # D = {R(a,b1), R(a,b2)} is inconsistent with func(R): everything is certain.
    answers = omq.certain_answers(functional_violation_instance(), engine="bounded")
    assert ("a",) in answers
    # D' = {R(a,b)} is consistent and A is not entailed anywhere.
    assert omq.certain_answers(functional_ok_instance(), engine="bounded") == frozenset()


@settings(max_examples=12, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=2)),
        max_size=4,
    ),
    st.sets(st.integers(min_value=0, max_value=2), max_size=2),
)
def test_forest_engine_agrees_with_bounded_engine(edges, marked):
    """Property: on random small HasParent-chains the complete AQ engine and the
    bounded reference engine agree (Example 4.5's ontology)."""
    from repro.workloads.medical import example_4_5_omq

    omq = example_4_5_omq()
    facts = [
        Fact(RelationSymbol("HasParent", 2), (f"p{a}", f"p{b}")) for a, b in edges
    ]
    facts += [
        Fact(RelationSymbol("HereditaryPredisposition", 1), (f"p{m}",)) for m in marked
    ]
    if not facts:
        return
    data = Instance(facts)
    atomic = omq.certain_answers(data, engine="atomic")
    bounded = omq.certain_answers(data, engine="bounded")
    assert atomic == bounded
