"""The structured telemetry layer: spans, counters, exporters, rollups.

Three angles pin the layer down:

* **recorder semantics** — span parentage, mis-nested close recovery,
  counters/histograms, install/enable scoping, and the no-op disabled path;
* **instrumentation truth** — counters recorded through the engine agree
  with ground truth the instrumented components expose independently
  (``ClauseSolver.stats``, session stats, explicit fixpoint runs), checked
  over a real Table 1 serving stream;
* **export contracts** — the Chrome trace-event document validates, the
  ``obda-session-rollup/v1`` schema is complete on both ``ObdaSession`` and
  ``ShardedObdaSession.explain()``, and disabled-mode instrumentation stays
  cheap enough to leave always-on.
"""

import json

import pytest

from repro.core import Atom, Fact, Instance, RelationSymbol, Variable
from repro.datalog import DisjunctiveDatalogProgram, Rule, adom_atom, goal_atom
from repro.datalog.plain import DatalogProgram
from repro.engine.grounder import ground_program
from repro.engine.sat import ClauseSolver
from repro.obs import (
    NOOP_SPAN,
    Telemetry,
    chrome_trace,
    enabled,
    maybe_span,
    text_summary,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs import telemetry as _telemetry
from repro.service import (
    ObdaSession,
    ShardedObdaSession,
    medical_universe,
    random_stream,
    replay,
)
from repro.service.session import DEFAULT_EVENT_WINDOW, SessionStats
from repro.workloads.medical import example_2_1_omq

A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
EDGE = RelationSymbol("edge", 2)
P = RelationSymbol("P", 1)
Q = RelationSymbol("Q", 1)
X, Y = Variable("x"), Variable("y")


def _fixpoint_program() -> DisjunctiveDatalogProgram:
    """Recursive, disjunction-free: routed to the tier-1 fixpoint state."""
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (X,)),), (Atom(A, (X,)),)),
            Rule((Atom(P, (Y,)),), (Atom(P, (X,)), Atom(EDGE, (X, Y)))),
            Rule((goal_atom(X),), (Atom(P, (X,)), Atom(B, (X,)))),
        ]
    )


def _disjunctive_program() -> DisjunctiveDatalogProgram:
    """Genuinely disjunctive: routed to the tier-2 CDCL state."""
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (X,)), Atom(Q, (X,))), (adom_atom(X),)),
            Rule((), (Atom(P, (X,)), Atom(A, (X,)))),
            Rule((goal_atom(X),), (Atom(Q, (X,)), Atom(EDGE, (X, Y)))),
        ]
    )


# -- recorder semantics ---------------------------------------------------------


def test_span_tree_parentage_and_stack():
    tel = Telemetry(clock=iter(range(100)).__next__)
    with tel.span("root", kind="outer"):
        with tel.span("child"):
            tel.event("leaf", n=1)
        with tel.span("sibling") as handle:
            handle.set(rows=7)
    assert tel.open_spans == 0
    names = [span.name for span in tel.spans]
    assert names == ["root", "child", "leaf", "sibling"]
    root, child, leaf, sibling = tel.spans
    assert root.parent is None
    assert child.parent == root.index
    assert leaf.parent == child.index
    assert sibling.parent == root.index
    assert leaf.duration_s == 0.0
    assert sibling.attributes == {"rows": 7}
    assert root.attributes == {"kind": "outer"}
    assert all(span.duration_s is not None for span in tel.spans)


def test_mis_nested_close_does_not_leak_stack():
    tel = Telemetry()
    outer = tel.span("outer")
    tel.span("inner")  # never closed explicitly
    outer.__exit__(None, None, None)
    assert tel.open_spans == 0


def test_span_closes_on_exception():
    tel = Telemetry()
    with pytest.raises(RuntimeError):
        with tel.span("failing"):
            raise RuntimeError("boom")
    assert tel.open_spans == 0
    assert tel.spans[0].duration_s is not None


def test_counters_and_histograms():
    tel = Telemetry()
    tel.count("widgets")
    tel.count("widgets", 4)
    tel.record("latency", 0.5)
    tel.record("latency", 1.5)
    assert tel.counter("widgets") == 5
    assert tel.counter("missing") == 0
    histogram = tel.histograms["latency"]
    assert histogram.count == 2
    assert histogram.mean == pytest.approx(1.0)
    assert histogram.min == 0.5 and histogram.max == 1.5
    described = tel.describe()
    assert described["counters"]["widgets"] == 5
    assert described["histograms"]["latency"]["count"] == 2


def test_enabled_scoping_restores_previous_recorder():
    assert _telemetry.ACTIVE is None
    with enabled() as outer:
        assert _telemetry.ACTIVE is outer
        with enabled() as inner:
            assert _telemetry.ACTIVE is inner
        assert _telemetry.ACTIVE is outer
    assert _telemetry.ACTIVE is None


def test_maybe_span_disabled_is_shared_noop():
    assert _telemetry.ACTIVE is None
    handle = maybe_span("anything", rows=3)
    assert handle is NOOP_SPAN
    with handle as span:
        span.set(ignored=True)  # must not raise, must not allocate
    with enabled() as tel:
        with maybe_span("real", rows=3):
            pass
        assert [span.name for span in tel.spans] == ["real"]


# -- instrumentation truth ------------------------------------------------------


def test_table1_stream_span_tree_completeness():
    """Every epoch and query of a Table 1 serving stream appears as a span."""
    with enabled() as tel:
        session = ObdaSession(example_2_1_omq())
        universe = medical_universe(patients=4, generations=3)
        events = random_stream(universe, 16, seed=11, query_every=2)
        replay(session, events)
    assert tel.open_spans == 0
    by_name: dict[str, int] = {}
    for span in tel.spans:
        by_name[span.name] = by_name.get(span.name, 0) + 1
    stats = session.stats
    totals = stats.totals
    assert by_name.get("session.insert", 0) == totals["insert"]["count"]
    assert by_name.get("session.delete", 0) == totals["delete"]["count"]
    assert by_name.get("session.query", 0) == totals["query"]["count"]
    assert totals["query"]["count"] == stats.queries_answered > 0
    # Counter cross-checks against the session's own always-on stats.
    assert tel.counter("session.inserts") == totals["insert"]["count"]
    assert tel.counter("session.facts_inserted") == stats.facts_inserted
    assert tel.counter("session.facts_deleted") == stats.facts_deleted
    assert tel.counter("session.clauses_pushed") == stats.clauses_pushed
    assert tel.counter("session.queries") == stats.queries_answered
    # Epoch spans carry their epoch attribute in increasing order.
    epochs = [
        span.attributes["epoch"]
        for span in tel.spans
        if span.name in ("session.insert", "session.delete")
    ]
    assert epochs == sorted(epochs) and epochs[-1] == stats.epoch
    # All spans close with well-formed parentage (tree edges point backwards).
    for span in tel.spans:
        assert span.duration_s is not None
        if span.parent is not None:
            assert 0 <= span.parent < span.index


def test_sat_counters_crossvalidate_solver_stats():
    """Telemetry's sat.* counters equal the solver's own internal stats."""
    with enabled() as tel:
        session = ObdaSession(_disjunctive_program())
        universe = [Fact(A, (i,)) for i in range(3)] + [
            Fact(EDGE, (i, i + 1)) for i in range(3)
        ]
        events = random_stream(universe, 14, seed=5, query_every=2)
        replay(session, events)
    solver = session._state(None).solver
    stats = solver.stats
    assert stats.solve_calls > 0
    assert tel.counter("sat.solve_calls") == stats.solve_calls
    assert tel.counter("sat.conflicts") == stats.conflicts
    assert tel.counter("sat.propagations") == stats.propagations
    assert tel.counter("sat.decisions") == stats.decisions
    assert tel.counter("sat.learned_clauses") == stats.learned_clauses
    assert tel.counter("sat.restarts") == stats.restarts
    assert stats.learned_literals >= stats.learned_clauses >= stats.conflicts * 0
    described = stats.describe()
    assert described["solve_calls"] == stats.solve_calls


def test_sat_stats_always_on_without_telemetry():
    solver = ClauseSolver()
    p, q = ("P", (1,)), ("Q", (1,))
    solver.add_clause((), (p, q))
    solver.add_clause((p,), ())
    assert _telemetry.ACTIVE is None
    assert solver.solve()
    assert solver.stats.solve_calls == 1
    assert solver.stats.restarts == 1
    assert solver.stats.propagations >= 1


def test_fixpoint_and_dred_counters():
    program = _fixpoint_program()
    with enabled() as tel:
        session = ObdaSession(program)
        session.insert_facts(
            [Fact(A, (1,)), Fact(EDGE, (1, 2)), Fact(EDGE, (2, 3)), Fact(B, (3,))]
        )
        assert session.certain_answers() == frozenset({(3,)})
        session.delete_facts([Fact(EDGE, (2, 3))])
        assert session.certain_answers() == frozenset()
    assert tel.counter("dred.deletes") >= 1
    assert tel.counter("dred.overdeleted") >= 1  # Reach(3) is overdeleted
    assert any(span.name == "dred.insert" for span in tel.spans)


def test_plain_fixpoint_round_counters():
    reach = RelationSymbol("Reach", 1)
    program = DatalogProgram(
        [
            Rule((Atom(reach, (X,)),), (Atom(A, (X,)),)),
            Rule((Atom(reach, (Y,)),), (Atom(reach, (X,)), Atom(EDGE, (X, Y)))),
            Rule((goal_atom(X),), (Atom(reach, (X,)),)),
        ]
    )
    chain = [Fact(A, (0,))] + [Fact(EDGE, (i, i + 1)) for i in range(4)]
    with enabled() as tel:
        model = program.least_fixpoint(Instance(chain))
    assert tel.counter("fixpoint.runs") == 1
    # The 5-node chain needs at least 5 rounds to saturate Reach.
    assert tel.counter("fixpoint.rounds") >= 5
    assert tel.counter("fixpoint.rows_derived") >= 10  # Reach + goal rows
    rounds = tel.histograms["fixpoint.round_delta_rows"]
    assert rounds.count == tel.counter("fixpoint.rounds")
    (span,) = [s for s in tel.spans if s.name == "fixpoint.least_fixpoint"]
    assert span.attributes["rounds"] == tel.counter("fixpoint.rounds")
    assert sum(1 for fact in model if fact.relation == reach) == 5


def test_grounder_counters_and_span():
    program = _disjunctive_program()
    data = Instance([Fact(A, (1,)), Fact(EDGE, (1, 2)), Fact(EDGE, (2, 3))])
    with enabled() as tel:
        grounded = ground_program(program, data)
    assert tel.counter("grounder.clauses_emitted") > 0
    assert tel.counter("grounder.clauses_kept") == len(grounded.clauses)
    assert (
        tel.counter("grounder.clauses_in")
        == tel.counter("grounder.dedup_drops")
        + tel.counter("grounder.subsumption_hits")
        + tel.counter("grounder.clauses_kept")
    )
    (span,) = [s for s in tel.spans if s.name == "grounder.ground_program"]
    assert span.attributes["clauses_kept"] == len(grounded.clauses)


def test_join_counters_balance():
    with enabled() as tel:
        session = ObdaSession(_fixpoint_program())
        session.insert_facts(
            [Fact(A, (1,)), Fact(EDGE, (1, 2)), Fact(B, (2,))]
        )
        session.certain_answers()
    assert tel.counter("join.plans_executed") > 0
    steps = tel.counter("join.bucket_probe_steps") + tel.counter("join.merge_steps")
    assert steps > 0


# -- session stats: ring buffer + rollup ----------------------------------------


def test_session_stats_ring_buffer_bounds_events():
    stats = SessionStats(window=4)
    for _index in range(10):
        stats.epoch += 1
        stats.record_event("insert", facts=1, seconds=0.01)
    assert len(stats.events) == 4
    assert stats.events.maxlen == 4
    assert stats.totals["insert"]["count"] == 10  # cumulative survives eviction
    assert [event["epoch"] for event in stats.events] == [7, 8, 9, 10]
    rollup = stats.rollup()
    assert rollup["events"] == 10
    assert rollup["window"]["capacity"] == 4
    assert rollup["window"]["size"] == 4
    assert rollup["window"]["recent"]["insert"]["count"] == 4


def test_session_stats_default_window():
    stats = SessionStats()
    assert stats.events.maxlen == DEFAULT_EVENT_WINDOW


def test_rollup_schema_contract():
    stats = SessionStats(window=8)
    stats.epoch = 1
    stats.record_event("insert", facts=3, clauses=5, seconds=0.2)
    stats.record_event("query", seconds=0.1, query="q")
    stats.record_event("query", seconds=0.3, query="q")
    rollup = stats.rollup()
    assert rollup["schema"] == "obda-session-rollup/v1"
    assert set(rollup) == {"schema", "epoch", "events", "mix", "ops", "window"}
    assert rollup["mix"] == {
        "insert": pytest.approx(1 / 3),
        "delete": 0.0,
        "query": pytest.approx(2 / 3),
    }
    assert sum(rollup["mix"].values()) == pytest.approx(1.0)
    ops = rollup["ops"]
    assert set(ops) == {"insert", "delete", "query"}
    assert ops["insert"] == {
        "count": 1,
        "facts": 3,
        "clauses": 5,
        "total_s": pytest.approx(0.2),
        "mean_s": pytest.approx(0.2),
    }
    assert ops["query"]["mean_s"] == pytest.approx(0.2)
    assert rollup["window"]["recent"]["query"]["mean_s"] == pytest.approx(0.2)
    assert json.dumps(rollup)  # JSON-able end to end


def test_explain_reports_live_counters_and_rollup():
    session = ObdaSession(example_2_1_omq())
    universe = medical_universe(patients=3, generations=2)
    events = random_stream(universe, 12, seed=3, query_every=2)
    replay(session, events)
    info = session.explain()["queries"]["q"]
    assert "tier" in info and "tier_name" in info  # plan keys stay top-level
    live = info["live"]
    assert live["queries_answered"] == session.stats.queries_answered > 0
    assert live["total_s"] > 0
    assert live["last_s"] is not None
    assert live["mean_s"] == pytest.approx(live["total_s"] / live["queries_answered"])
    rollup = live["rollup"]
    assert rollup["schema"] == "obda-session-rollup/v1"
    assert rollup["mix"]["insert"] > 0 and rollup["mix"]["query"] > 0
    assert rollup["events"] == sum(op["count"] for op in rollup["ops"].values())


def test_sharded_explain_parity():
    session = ShardedObdaSession(example_2_1_omq(), shards=3)
    universe = medical_universe(patients=4, generations=2)
    events = random_stream(universe, 12, seed=9, query_every=3)
    replay(session, events)
    info = session.explain()["queries"]["q"]
    assert "tier" in info and "tier_name" in info
    shards = info["shards"]
    assert len(shards) == 3
    for index, record in enumerate(shards):
        assert record["shard"] == index
        assert set(record) >= {
            "shard",
            "facts",
            "clauses_pushed",
            "epoch",
            "queries_answered",
            "last_epoch_s",
        }
    assert sum(record["facts"] for record in shards) == len(session.instance)
    skew = info["shard_skew"]
    assert skew["facts_max"] == max(record["facts"] for record in shards)
    assert skew["facts_ratio"] >= 1.0 or skew["facts_max"] == 0
    live = info["live"]
    assert live["queries_answered"] > 0
    rollup = live["rollup"]
    assert rollup["schema"] == "obda-session-rollup/v1"
    assert set(rollup) == {"schema", "epoch", "events", "mix", "ops", "window"}
    assert rollup["ops"]["insert"]["count"] == sum(
        shard.stats.totals["insert"]["count"] for shard in session._sessions
    )


# -- exporters ------------------------------------------------------------------


def test_chrome_trace_valid_and_loadable(tmp_path):
    with enabled() as tel:
        session = ObdaSession(example_2_1_omq())
        universe = medical_universe(patients=3, generations=2)
        replay(session, random_stream(universe, 10, seed=1, query_every=2))
    document = chrome_trace(tel)
    assert validate_chrome_trace(document) == []
    events = document["traceEvents"]
    phases = {event["ph"] for event in events}
    assert "X" in phases and "C" in phases and "M" in phases
    durations = [event for event in events if event["ph"] == "X"]
    assert len(durations) == sum(
        1
        for span in tel.spans
        if span.duration_s and span.duration_s > 0 or span.attributes
    )
    # Round-trips through JSON on disk and revalidates.
    path = write_chrome_trace(tel, tmp_path / "trace.json")
    assert validate_trace_file(path) == []
    reloaded = json.loads(path.read_text())
    assert reloaded["otherData"]["spans"] == len(tel.spans)


def test_validate_chrome_trace_rejects_malformed():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": {}}) != []
    bad_phase = {"traceEvents": [{"ph": "Z", "name": "x", "ts": 0, "pid": 1, "tid": 1}]}
    assert validate_chrome_trace(bad_phase) != []
    negative = {
        "traceEvents": [
            {"ph": "X", "name": "x", "ts": -5, "dur": 1, "pid": 1, "tid": 1}
        ]
    }
    assert validate_chrome_trace(negative) != []


def test_text_summary_renders_tree_and_counters():
    with enabled() as tel:
        with maybe_span("outer"):
            with maybe_span("inner"):
                pass
            with maybe_span("inner"):
                pass
        tel.count("things", 3)
        tel.record("sizes", 2.0)
    summary = text_summary(tel)
    assert "outer" in summary
    assert "inner" in summary and "×2" in summary
    assert "things = 3" in summary
    assert "sizes" in summary


# -- disabled-mode overhead -----------------------------------------------------


def test_disabled_mode_overhead_microbenchmark():
    """The disabled instrumentation path must stay sub-microsecond-ish.

    Bounds are deliberately loose (CI machines vary wildly); the point is
    to catch a regression that makes the disabled path allocate or take a
    lock — those show up as order-of-magnitude jumps, not percentages.
    """
    import timeit

    assert _telemetry.ACTIVE is None
    iterations = 50_000
    guard_s = timeit.timeit(
        "tel = _telemetry.ACTIVE\n"
        "if tel is not None:\n"
        "    tel.count('x')",
        globals={"_telemetry": _telemetry},
        number=iterations,
    )
    span_s = timeit.timeit(
        "with maybe_span('x'):\n    pass",
        globals={"maybe_span": maybe_span},
        number=iterations,
    )
    assert guard_s / iterations < 5e-6  # ~50x headroom over the expected cost
    assert span_s / iterations < 10e-6
    # And the serving layer stays fast end to end with telemetry off.
    session = ObdaSession(_fixpoint_program())
    session.insert_facts([Fact(A, (1,)), Fact(EDGE, (1, 2)), Fact(B, (2,))])
    answers = session.certain_answers()
    assert answers == frozenset({(2,)})
    assert _telemetry.ACTIVE is None
