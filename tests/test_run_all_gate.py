"""The benchmark regression gate, including the empty-overlap failure mode.

Regression under test: when the baseline and the current run shared *no*
benchmark names, ``speedups`` stayed empty, no geomean was computed, and the
``--max-regression`` gate silently passed — a rename sweep (or an empty run)
could disable the gate without anyone noticing.  The gate must now fail
loudly on empty overlap.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_RUN_ALL = Path(__file__).resolve().parent.parent / "benchmarks" / "run_all.py"
_spec = importlib.util.spec_from_file_location("bench_run_all", _RUN_ALL)
run_all = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(run_all)


def _consolidated(results: dict, label: str = "current") -> dict:
    return {
        "label": label,
        "results": {
            name: {"mean_s": mean, "min_s": mean, "stddev_s": 0.0, "rounds": 1}
            for name, mean in results.items()
        },
    }


def test_apply_baseline_tracks_overlap_and_geomean():
    current = _consolidated({"a": 1.0, "b": 2.0, "new": 3.0})
    baseline = _consolidated({"a": 2.0, "b": 2.0, "gone": 1.0}, label="seed")
    run_all.apply_baseline(current, baseline)
    assert current["baseline_overlap"] == 2
    assert current["results"]["a"]["speedup_vs_baseline"] == pytest.approx(2.0)
    assert "speedup_vs_baseline" not in current["results"]["new"]
    assert current["geomean_speedup_vs_baseline"] == pytest.approx(2.0 ** 0.5)


def test_apply_baseline_with_empty_overlap_computes_no_geomean():
    current = _consolidated({"renamed_x": 1.0})
    baseline = _consolidated({"x": 1.0}, label="seed")
    run_all.apply_baseline(current, baseline)
    assert current["baseline_overlap"] == 0
    assert "geomean_speedup_vs_baseline" not in current


def test_gate_fails_on_empty_overlap():
    current = _consolidated({"renamed_x": 1.0})
    run_all.apply_baseline(current, _consolidated({"x": 1.0}, label="seed"))
    ok, message = run_all.gate_verdict(current, max_regression=1.5)
    assert not ok
    assert "no benchmark names" in message


def test_gate_passes_without_a_baseline():
    ok, _ = run_all.gate_verdict(_consolidated({"a": 1.0}), max_regression=1.5)
    assert ok


def test_gate_passes_on_healthy_overlap_and_fails_on_regression():
    current = _consolidated({"a": 1.0})
    run_all.apply_baseline(current, _consolidated({"a": 1.2}, label="seed"))
    ok, message = run_all.gate_verdict(current, max_regression=1.5)
    assert ok and "1.20x" in message

    slow = _consolidated({"a": 2.0})
    run_all.apply_baseline(slow, _consolidated({"a": 1.0}, label="seed"))
    ok, message = run_all.gate_verdict(slow, max_regression=1.5)
    assert not ok and "REGRESSION" in message


def test_gate_derives_overlap_for_pre_overlap_files():
    """Consolidated files written before overlap tracking still gate."""
    legacy = {
        "label": "old",
        "baseline_label": "seed",
        "results": {"a": {"mean_s": 1.0, "speedup_vs_baseline": 1.0}},
        "geomean_speedup_vs_baseline": 1.0,
    }
    ok, _ = run_all.gate_verdict(legacy, max_regression=1.5)
    assert ok
    legacy_empty = {"label": "old", "baseline_label": "seed", "results": {}}
    ok, message = run_all.gate_verdict(legacy_empty, max_regression=1.5)
    assert not ok and "no benchmark names" in message


def _write(path: Path, payload: dict) -> Path:
    path.write_text(json.dumps(payload))
    return path


def test_check_only_exit_codes(tmp_path):
    """End-to-end: ``--check-only`` re-gates a consolidated file."""
    baseline = _write(tmp_path / "seed.json", _consolidated({"a": 1.0}, "seed"))
    good = _write(tmp_path / "good.json", _consolidated({"a": 1.0, "b": 2.0}))
    disjoint = _write(tmp_path / "disjoint.json", _consolidated({"z": 1.0}))
    slow = _write(tmp_path / "slow.json", _consolidated({"a": 9.0}))

    def check(results: Path, *extra: str) -> int:
        argv = [
            "--check-only",
            "--output",
            str(results),
            "--baseline",
            str(baseline),
            *extra,
        ]
        return run_all.main(argv)

    assert check(good) == 0
    assert check(disjoint) != 0  # the empty-overlap bugfix
    assert check(slow) != 0
    assert check(disjoint, "--no-regression-gate") == 0
    assert check(slow, "--no-regression-gate") == 0
