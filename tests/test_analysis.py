"""The static analyzer: one mutation test per diagnostic code, the
``check=`` wiring on every compile path, the CLI, the repo-invariant
linter, and the committed-corpus sweep.

The mutation tests follow one pattern: a *seeder* builds a program
exhibiting exactly the defect a code describes, and the test asserts the
code fires (and that repairing the defect silences it, via the clean
baseline program which must produce zero diagnostics).
"""

from __future__ import annotations

import importlib.util
import sys
import warnings
from pathlib import Path

import pytest

from repro.analysis import (
    CHECK_MODES,
    REGISTRY,
    Diagnostic,
    DiagnosticReport,
    ProgramAnalysisError,
    all_codes,
    analyse,
    merge_reports,
    shardability_diagnostics,
    vet_program,
)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.harvest import harvest_target
from repro.core.cq import Atom, Variable
from repro.core.instance import Fact
from repro.core.schema import RelationSymbol, Schema
from repro.datalog.ddlog import ADOM, GOAL, DisjunctiveDatalogProgram, Rule
from repro.planner.plan import plan_program
from repro.planner.policy import PlanPolicy
from repro.service.session import ObdaSession
from repro.service.shards import ShardedObdaSession

REPO_ROOT = Path(__file__).resolve().parent.parent

x, y, z = Variable("x"), Variable("y"), Variable("z")
A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
E = RelationSymbol("E", 2)
Q = RelationSymbol("Q", 1)
P = RelationSymbol("P", 1)
GOAL0 = RelationSymbol(GOAL, 0)


def goal_rule(*body: Atom) -> Rule:
    return Rule((Atom(GOAL0, ()),), tuple(body))


def clean_program() -> DisjunctiveDatalogProgram:
    return DisjunctiveDatalogProgram([goal_rule(Atom(A, (x,)))])


def unsafe_rule(head: tuple[Atom, ...], body: tuple[Atom, ...]) -> Rule:
    """Build a Rule bypassing the constructor's safety check (the analyzer
    must catch rules produced by generators that skip validation)."""
    rule = object.__new__(Rule)
    object.__setattr__(rule, "head", head)
    object.__setattr__(rule, "body", body)
    return rule


# ---------------------------------------------------------------------------
# Seeders: one program per diagnostic code.
# ---------------------------------------------------------------------------


def seed_md001() -> DisjunctiveDatalogProgram:
    clash = RelationSymbol("A", 2)  # A used with arity 1 *and* 2
    return DisjunctiveDatalogProgram(
        [goal_rule(Atom(A, (x,))), goal_rule(Atom(clash, (x, y)))]
    )


def seed_md002() -> DisjunctiveDatalogProgram:
    rule = unsafe_rule((Atom(Q, (y,)),), (Atom(A, (x,)),))  # head y unbound
    return DisjunctiveDatalogProgram([rule, goal_rule(Atom(Q, (x,)))])


def seed_md003() -> DisjunctiveDatalogProgram:
    return DisjunctiveDatalogProgram(
        [Rule((Atom(Q, (x,)),), (Atom(A, (x,)),)), goal_rule(Atom(A, (x,)))]
    )


def seed_md004() -> DisjunctiveDatalogProgram:
    # No goal rule and no constraint: the query is empty on every instance.
    return DisjunctiveDatalogProgram(
        [Rule((Atom(Q, (x,)),), (Atom(A, (x,)),))],
        goal_relation=GOAL0,
    )


def seed_md005() -> DisjunctiveDatalogProgram:
    return DisjunctiveDatalogProgram(
        [goal_rule(Atom(A, (x,))), Rule((Atom(Q, (x,)),), (Atom(B, (x,)),))]
    )


def seed_md006() -> DisjunctiveDatalogProgram:
    # Same rule up to variable renaming.
    return DisjunctiveDatalogProgram(
        [goal_rule(Atom(A, (x,))), goal_rule(Atom(A, (y,)))]
    )


def seed_md007() -> DisjunctiveDatalogProgram:
    return DisjunctiveDatalogProgram(
        [goal_rule(Atom(A, (x,)), Atom(E, (x, "typo")))]
    )


def seed_md101() -> DisjunctiveDatalogProgram:
    return DisjunctiveDatalogProgram([goal_rule(Atom(A, (x,)), Atom(B, (y,)))])


def seed_md102() -> DisjunctiveDatalogProgram:
    return seed_md007()  # the constant is both a singleton and a shard blocker


def seed_md103() -> DisjunctiveDatalogProgram:
    nullary = RelationSymbol("flag", 0)
    return DisjunctiveDatalogProgram(
        [Rule((Atom(nullary, ()),), (Atom(A, (x,)),)), goal_rule(Atom(nullary, ()))]
    )


def seed_md201() -> DisjunctiveDatalogProgram:
    adom = RelationSymbol(ADOM, 1)
    return DisjunctiveDatalogProgram(
        [Rule((Atom(adom, (x,)),), (Atom(A, (x,)),)), goal_rule(Atom(A, (x,)))]
    )


def seed_md202() -> DisjunctiveDatalogProgram:
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (x,)), Atom(Q, (x,))), (Atom(A, (x,)),)),
            goal_rule(Atom(P, (x,))),
        ]
    )


def seed_md203() -> DisjunctiveDatalogProgram:
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(Q, (x,)),), (Atom(A, (x,)),)),
            Rule((Atom(Q, (y,)),), (Atom(E, (x, y)), Atom(Q, (x,)))),
            goal_rule(Atom(Q, (x,))),
        ]
    )


def seed_md204() -> DisjunctiveDatalogProgram:
    # Nonrecursive and disjunction-free, but one unfolded disjunct exceeds
    # the planner's atom cap (MAX_DISJUNCT_ATOMS = 24).
    body = tuple(Atom(RelationSymbol(f"A{i}", 1), (x,)) for i in range(25))
    return DisjunctiveDatalogProgram([goal_rule(*body)])


SEEDERS = {
    "MD001": seed_md001,
    "MD002": seed_md002,
    "MD003": seed_md003,
    "MD004": seed_md004,
    "MD005": seed_md005,
    "MD006": seed_md006,
    "MD007": seed_md007,
    "MD101": seed_md101,
    "MD102": seed_md102,
    "MD103": seed_md103,
    "MD201": seed_md201,
    "MD202": seed_md202,
    "MD203": seed_md203,
    "MD204": seed_md204,
}


def test_every_registered_code_has_a_seeder():
    assert set(SEEDERS) == set(all_codes())


@pytest.mark.parametrize("code", sorted(SEEDERS))
def test_mutation_triggers_code(code):
    report = analyse(SEEDERS[code]())
    assert code in report.codes, report.format_text()
    for diagnostic in report.by_code(code):
        assert diagnostic.severity == REGISTRY[code].severity


def test_clean_program_has_no_diagnostics():
    report = analyse(clean_program())
    assert len(report) == 0
    assert report.format_text() == "clean: no diagnostics"


def test_report_caching_on_program_object():
    program = clean_program()
    assert analyse(program) is analyse(program)
    # Evidence-bearing analyses are never cached.
    schema = Schema([A])
    assert analyse(program, edb_schema=schema) is not analyse(
        program, edb_schema=schema
    )


def test_md001_adom_arity_special_case():
    bad_adom = RelationSymbol(ADOM, 2)
    program = DisjunctiveDatalogProgram([goal_rule(Atom(bad_adom, (x, y)))])
    report = analyse(program)
    [diagnostic] = report.by_code("MD001")
    assert "adom" in diagnostic.message


def test_md004_body_atom_outside_declared_schema():
    program = DisjunctiveDatalogProgram([goal_rule(Atom(B, (x,)))])
    report = analyse(program, edb_schema=Schema([A]))
    assert any(
        d.code == "MD004" and d.subject == "B" for d in report
    ), report.format_text()


def test_md006_constraint_subsumes_on_body_alone():
    program = DisjunctiveDatalogProgram(
        [
            Rule((), (Atom(A, (x,)),)),
            Rule((), (Atom(A, (x,)), Atom(B, (x,)))),  # strictly stronger body
            goal_rule(Atom(A, (x,))),
        ]
    )
    report = analyse(program)
    assert any(
        d.code == "MD006" and d.rule_index == 1 for d in report
    ), report.format_text()


def test_severity_views_and_merge():
    report = analyse(seed_md001())
    assert report.has_errors
    assert all(d.severity == "error" for d in report.errors)
    merged = merge_reports([report, analyse(seed_md003())])
    assert {"MD001", "MD003"} <= merged.codes


# ---------------------------------------------------------------------------
# check= wiring: sessions, planner, shards.
# ---------------------------------------------------------------------------


def test_vet_program_rejects_unknown_mode():
    assert CHECK_MODES == ("warn", "strict", "off")
    with pytest.raises(ValueError, match="check must be one of"):
        vet_program(clean_program(), check="loud")


def test_strict_session_refuses_broken_program_before_solver_work():
    with pytest.raises(ProgramAnalysisError) as excinfo:
        ObdaSession(seed_md001(), check="strict")
    assert any(d.code == "MD001" for d in excinfo.value.diagnostics)
    # ProgramAnalysisError is a ValueError: existing guards keep working.
    assert isinstance(excinfo.value, ValueError)


def test_warn_session_emits_warnings_and_still_answers():
    with pytest.warns(UserWarning, match="MD003"):
        session = ObdaSession(seed_md003(), check="warn")
    session.insert_facts([Fact(A, ("a",))])
    assert session.certain_answers() == frozenset({()})


def test_off_session_is_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        ObdaSession(seed_md003(), policy=PlanPolicy(check="off"))


def test_plan_program_strict_refuses_errors():
    with pytest.raises(ProgramAnalysisError):
        plan_program(seed_md002(), check="strict")
    # Default stays off: planning a warning-laden program is fine.
    plan_program(seed_md003())


def test_sharded_session_rejection_carries_diagnostic_code():
    with pytest.raises(ProgramAnalysisError, match="cannot be sharded") as excinfo:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ShardedObdaSession(seed_md102(), shards=2)
    error = excinfo.value
    assert error.diagnostics[0].code == "MD102"
    assert "[MD102]" in str(error)


def test_shardability_diagnostics_match_runtime_conditions():
    codes = {d.code for d in shardability_diagnostics(seed_md101())}
    assert codes == {"MD101"}
    codes = {d.code for d in shardability_diagnostics(seed_md103())}
    assert "MD103" in codes
    assert not list(shardability_diagnostics(clean_program()))


# ---------------------------------------------------------------------------
# The CLI (python -m repro.analysis / tools/check_program.py).
# ---------------------------------------------------------------------------


def _write_module(tmp_path: Path, name: str, body: str) -> str:
    path = tmp_path / f"{name}.py"
    path.write_text(body)
    return str(path)


FACTORY_PRELUDE = """\
from repro.core.cq import Atom, Variable
from repro.core.schema import RelationSymbol
from repro.datalog.ddlog import GOAL, DisjunctiveDatalogProgram, Rule

x = Variable("x")
A = RelationSymbol("A", 1)
GOAL0 = RelationSymbol(GOAL, 0)
"""


def test_cli_clean_target_exits_zero(tmp_path, capsys):
    target = _write_module(
        tmp_path,
        "clean_workload",
        FACTORY_PRELUDE
        + """
def the_query() -> DisjunctiveDatalogProgram:
    return DisjunctiveDatalogProgram([Rule((Atom(GOAL0, ()),), (Atom(A, (x,)),))])
""",
    )
    assert analysis_main([target]) == 0
    assert "ok" in capsys.readouterr().out


def test_cli_error_program_exits_one(tmp_path, capsys):
    target = _write_module(
        tmp_path,
        "broken_workload",
        FACTORY_PRELUDE
        + """
A2 = RelationSymbol("A", 2)
y = Variable("y")

def the_query() -> DisjunctiveDatalogProgram:
    return DisjunctiveDatalogProgram([
        Rule((Atom(GOAL0, ()),), (Atom(A, (x,)),)),
        Rule((Atom(GOAL0, ()),), (Atom(A2, (x, y)),)),
    ])
""",
    )
    assert analysis_main([target]) == 1
    assert "MD001" in capsys.readouterr().out


def test_cli_import_failure_exits_two(tmp_path, capsys):
    target = _write_module(tmp_path, "wont_import", "raise RuntimeError('boom')\n")
    assert analysis_main([target]) == 2
    assert "HARVEST FAILED" in capsys.readouterr().out


def test_cli_list_codes_covers_registry(capsys):
    assert analysis_main(["--list-codes"]) == 0
    out = capsys.readouterr().out
    for code in all_codes():
        assert code in out


def test_harvest_skips_underscored_and_reexported_factories(tmp_path):
    target = _write_module(
        tmp_path,
        "harvest_me",
        FACTORY_PRELUDE
        + """
def _private() -> DisjunctiveDatalogProgram:
    raise AssertionError("must not be called")

def visible() -> DisjunctiveDatalogProgram:
    return DisjunctiveDatalogProgram([Rule((Atom(GOAL0, ()),), (Atom(A, (x,)),))])
""",
    )
    programs, failures = harvest_target(target)
    assert not failures
    assert [p.label.rsplit(":", 1)[1] for p in programs] == ["visible"]


# ---------------------------------------------------------------------------
# Committed-corpus sweep: every workload module lints clean.
# ---------------------------------------------------------------------------


def _workload_modules() -> list[str]:
    package = REPO_ROOT / "src" / "repro" / "workloads"
    return sorted(
        f"repro.workloads.{path.stem}"
        for path in package.glob("*.py")
        if path.stem != "__init__"
    )


@pytest.mark.parametrize("module", _workload_modules())
def test_committed_workloads_lint_clean(module):
    programs, failures = harvest_target(module)
    assert not failures, failures
    for harvested in programs:
        report = analyse(harvested.program)
        assert not report.has_errors, f"{harvested.label}:\n{report.format_text()}"


# ---------------------------------------------------------------------------
# Repo-invariant linter (tools/lint_invariants.py).
# ---------------------------------------------------------------------------


def _load_linter():
    path = REPO_ROOT / "tools" / "lint_invariants.py"
    spec = importlib.util.spec_from_file_location("lint_invariants", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("lint_invariants", module)
    spec.loader.exec_module(module)
    return module


LINTER = _load_linter()

SEEDED_VIOLATIONS = {
    "RL001": (
        "clock.py",
        "import time\n\ndef f():\n    return time.perf_counter()\n",
    ),
    "RL002": (
        "spans.py",
        "from repro.obs import maybe_span\n\n"
        "def f(items):\n"
        "    for item in items:\n"
        "        with maybe_span('per-item'):\n"
        "            pass\n",
    ),
    "RL003": (
        "unguarded.py",
        "from repro.obs import telemetry\n\n"
        "def f():\n"
        "    tel = telemetry.ACTIVE\n"
        "    tel.count('events')\n",
    ),
    "RL004": (
        "privates.py",
        "def f(instance):\n    return instance._by_relation\n",
    ),
}


def test_linter_is_clean_on_src():
    violations = LINTER.lint_paths([REPO_ROOT / "src"])
    assert violations == [], "\n".join(str(v) for v in violations)


@pytest.mark.parametrize("code", sorted(SEEDED_VIOLATIONS))
def test_linter_catches_seeded_violation(tmp_path, code):
    name, body = SEEDED_VIOLATIONS[code]
    path = tmp_path / name
    path.write_text(body)
    found = {v.code for v in LINTER.lint_file(path)}
    assert code in found, found


@pytest.mark.parametrize("code", sorted(SEEDED_VIOLATIONS))
def test_linter_pragma_waives_finding(tmp_path, code):
    name, body = SEEDED_VIOLATIONS[code]
    path = tmp_path / name
    path.write_text(body)
    # Apply the waiver pragma on the exact line the linter reported.
    [violation] = [v for v in LINTER.lint_file(path) if v.code == code]
    lines = body.splitlines()
    lines[violation.line - 1] += f"  # lint: allow({code})"
    path.write_text("\n".join(lines) + "\n")
    assert [v for v in LINTER.lint_file(path) if v.code == code] == []


def test_linter_guard_idioms_are_accepted(tmp_path):
    path = tmp_path / "guarded.py"
    path.write_text(
        "from repro.obs import telemetry\n\n"
        "def guarded_if():\n"
        "    tel = telemetry.ACTIVE\n"
        "    if tel is not None:\n"
        "        tel.count('events')\n\n"
        "def early_return():\n"
        "    tel = telemetry.ACTIVE\n"
        "    if tel is None:\n"
        "        return\n"
        "    tel.record('latency', 1.0)\n"
    )
    assert LINTER.lint_file(path) == []


# ---------------------------------------------------------------------------
# Documentation: every code is documented.
# ---------------------------------------------------------------------------


def test_docs_reference_every_code():
    docs = (REPO_ROOT / "docs" / "diagnostics.md").read_text()
    for code in all_codes():
        assert code in docs, f"{code} missing from docs/diagnostics.md"
    for code in sorted(SEEDED_VIOLATIONS):
        assert code in docs, f"{code} missing from docs/diagnostics.md"


def test_diagnostic_str_and_describe_round_trip():
    diagnostic = Diagnostic(
        "MD001", "error", "boom", rule_index=3, rule="r", subject="s", suggestion="fix"
    )
    text = str(diagnostic)
    assert "MD001 error [rule 3]: boom (hint: fix)" == text
    info = diagnostic.describe()
    assert info["code"] == "MD001" and info["suggestion"] == "fix"
    report = DiagnosticReport((diagnostic,))
    assert report.describe()["errors"] == 1
