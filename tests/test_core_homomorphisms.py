"""Tests for homomorphisms, cores and structure operations."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    Fact,
    Instance,
    MarkedInstance,
    RelationSymbol,
    core,
    diagonal,
    direct_product,
    find_homomorphism,
    has_homomorphism,
    homomorphically_equivalent,
    homomorphically_incomparable,
    homomorphisms,
    is_core,
    is_homomorphism,
    marked_homomorphism_exists,
    power,
)
from repro.workloads.csp_zoo import clique_template, cycle_graph

EDGE = RelationSymbol("edge", 2)
A = RelationSymbol("A", 1)


def path(length):
    return Instance([Fact(EDGE, (i, i + 1)) for i in range(length)])


def test_path_maps_into_clique():
    assert has_homomorphism(path(3), clique_template(2))
    assert has_homomorphism(path(5), clique_template(3))


def test_odd_cycle_not_two_colourable():
    assert not has_homomorphism(cycle_graph(3), clique_template(2))
    assert has_homomorphism(cycle_graph(4), clique_template(2))
    assert has_homomorphism(cycle_graph(3), clique_template(3))


def test_found_homomorphism_is_valid():
    source = cycle_graph(4)
    target = clique_template(2)
    hom = find_homomorphism(source, target)
    assert hom is not None
    assert is_homomorphism(hom, source, target)


def test_homomorphism_respects_fixed_assignment():
    source = path(2)
    target = clique_template(3)
    hom = find_homomorphism(source, target, fixed={0: 1})
    assert hom is not None and hom[0] == 1


def test_unary_relations_constrain_homomorphisms():
    source = Instance([Fact(A, ("x",)), Fact(EDGE, ("x", "y"))])
    target = Instance([Fact(EDGE, (0, 1)), Fact(A, (1,))])
    assert not has_homomorphism(source, target)
    target_ok = target.with_facts([Fact(A, (0,))])
    assert has_homomorphism(source, target_ok)


def test_enumerate_all_homomorphisms():
    homs = list(homomorphisms(path(1), clique_template(2)))
    assert len(homs) == 2  # 0->1 or 1->0


def test_empty_source_always_maps():
    assert has_homomorphism(Instance([]), clique_template(2))


def test_marked_homomorphism():
    source = MarkedInstance(path(2), (0,))
    target = MarkedInstance(clique_template(2), (0,))
    assert marked_homomorphism_exists(source, target)
    # Forcing both endpoints of an edge onto the same mark must fail.
    bad_source = MarkedInstance(path(1), (0, 1))
    bad_target = MarkedInstance(clique_template(2), (0, 0))
    assert not marked_homomorphism_exists(bad_source, bad_target)


def test_core_of_disjoint_edges_is_one_edge():
    graph = Instance([Fact(EDGE, (0, 1)), Fact(EDGE, (2, 3)), Fact(EDGE, (4, 5))])
    kernel = core(graph)
    assert len(kernel.active_domain) == 2
    assert is_core(kernel)
    assert homomorphically_equivalent(kernel, graph)


def test_core_of_symmetric_even_cycle_is_edge():
    symmetric = Instance(
        [Fact(EDGE, (i, (i + 1) % 4)) for i in range(4)]
        + [Fact(EDGE, ((i + 1) % 4, i)) for i in range(4)]
    )
    kernel = core(symmetric)
    assert len(kernel.active_domain) == 2
    assert homomorphically_equivalent(kernel, symmetric)


def test_core_of_clique_is_itself():
    assert len(core(clique_template(3)).active_domain) == 3


def test_homomorphic_incomparability():
    assert homomorphically_incomparable(cycle_graph(3), clique_template(2))


def test_direct_product_projections_are_homomorphisms():
    product = direct_product(cycle_graph(3), clique_template(3))
    assert has_homomorphism(product, cycle_graph(3))
    assert has_homomorphism(product, clique_template(3))


def test_power_and_diagonal():
    squared = power(clique_template(2), 2)
    assert ((0, 0), (1, 1)) in squared.tuples(EDGE)
    assert diagonal(clique_template(2)) == {(0, 0), (1, 1)}


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=2, max_value=3))
def test_paths_always_map_to_cliques(length, clique_size):
    """Property: any directed path maps homomorphically into K_n for n >= 2."""
    assert has_homomorphism(path(length), clique_template(clique_size))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=3, max_value=7))
def test_cycle_two_colourability_matches_parity(length):
    assert has_homomorphism(cycle_graph(length), clique_template(2)) == (length % 2 == 0)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=3, max_value=6))
def test_core_is_homomorphically_equivalent(length):
    graph = cycle_graph(length)
    kernel = core(graph)
    assert homomorphically_equivalent(graph, kernel)
    assert is_core(kernel)
