"""Tests for Theorem 3.17 (frontier-guarded DDlog as (GNFO, UCQ) queries) and
Proposition 3.15 (a (GFO, UCQ) query outside MDDlog)."""

import pytest

from repro.core import Fact, Instance, RelationSymbol
from repro.core.cq import Atom, var
from repro.datalog import DisjunctiveDatalogProgram, Rule, evaluate, goal_atom
from repro.fo import is_gfo, is_gnfo
from repro.translations import (
    frontier_ddlog_to_gnfo_omq,
    proposition_3_15_omq,
    proposition_3_15_schema,
    rule_to_gnfo_sentence,
)
from repro.workloads.separations import gfo_d0, gfo_d1, gfo_query_holds

EDGE = RelationSymbol("edge", 2)
MARK = RelationSymbol("mark", 1)
x, y = var("x"), var("y")


def reachability_program() -> DisjunctiveDatalogProgram:
    """Plain (disjunction-free, frontier-guarded) reachability to a marked element."""
    reach = RelationSymbol("Reach", 1)
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(reach, (x,)),), (Atom(MARK, (x,)),)),
            Rule((Atom(reach, (x,)),), (Atom(EDGE, (x, y)), Atom(reach, (y,)))),
            Rule((goal_atom(x),), (Atom(reach, (x,)),)),
        ]
    )


def test_rule_to_gnfo_sentence_membership():
    program = reachability_program()
    for rule in program.non_goal_rules():
        sentence = rule_to_gnfo_sentence(rule)
        assert is_gnfo(sentence)


def test_frontier_ddlog_to_gnfo_round_trip_on_small_instances():
    program = reachability_program()
    omq = frontier_ddlog_to_gnfo_omq(program)
    assert omq.arity == 1
    chain = Instance(
        [Fact(EDGE, ("a", "b")), Fact(EDGE, ("b", "c")), Fact(MARK, ("c",))]
    )
    datalog_answers = evaluate(program, chain)
    omq_answers = omq.certain_answers(chain, extra_elements=0)
    assert omq_answers == datalog_answers == {("a",), ("b",), ("c",)}


def test_frontier_ddlog_to_gnfo_with_disjunction():
    choice = RelationSymbol("Chosen", 1)
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(choice, (x,)), Atom(choice, (y,))), (Atom(EDGE, (x, y)),)),
            Rule((goal_atom(x),), (Atom(choice, (x,)), Atom(MARK, (x,)))),
        ]
    )
    omq = frontier_ddlog_to_gnfo_omq(program)
    # Both endpoints marked: whichever endpoint is chosen is a marked answer,
    # but neither single endpoint is *certain*.
    both = Instance([Fact(EDGE, ("a", "b")), Fact(MARK, ("a",)), Fact(MARK, ("b",))])
    assert evaluate(program, both) == frozenset()
    assert omq.certain_answers(both, extra_elements=0) == frozenset()
    # A loop forces the single element to be chosen.
    loop = Instance([Fact(EDGE, ("a", "a")), Fact(MARK, ("a",))])
    assert evaluate(program, loop) == {("a",)}
    assert omq.certain_answers(loop, extra_elements=0) == {("a",)}


def test_non_frontier_guarded_program_rejected():
    P = RelationSymbol("P", 2)
    bad = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (x, y)),), (Atom(EDGE, (x, x)), Atom(EDGE, (y, y)))),
            Rule((goal_atom(),), (Atom(P, (x, y)),)),
        ]
    )
    with pytest.raises(ValueError):
        frontier_ddlog_to_gnfo_omq(bad)


# -- Proposition 3.15 -------------------------------------------------------------------


def test_proposition_3_15_sentences_are_guarded():
    omq = proposition_3_15_omq()
    for sentence in omq.sentences:
        assert is_gfo(sentence)
    assert omq.ontology_fragments() >= {"GFO"}
    assert set(proposition_3_15_schema()) == set(omq.data_schema)


def test_proposition_3_15_query_on_separating_instances():
    omq = proposition_3_15_omq()
    # D1 with a short chain: the query holds (certain answer () present).
    d1 = gfo_d1(2)
    assert gfo_query_holds(d1)
    assert omq.certain_answers(d1, extra_elements=0) == {()}
    # D0: no A-to-B chain through a single middle element, query fails.
    d0 = gfo_d0(2)
    assert not gfo_query_holds(d0)
    assert omq.certain_answers(d0, extra_elements=0) == frozenset()


def test_separating_families_agree_with_direct_evaluator():
    omq = proposition_3_15_omq()
    for n in (2, 3):
        assert gfo_query_holds(gfo_d1(n))
        assert not gfo_query_holds(gfo_d0(n))
    # The bounded OMQ evaluation agrees on the smallest family member.
    assert omq.is_certain(gfo_d1(2), (), extra_elements=0)
