"""Tests for the succinctness measurement harness (Theorems 3.5–3.8)."""

from repro.obda import (
    aq_to_mddlog_curve,
    classify_growth,
    disjunctive_cover_family,
    inverse_elimination_curve,
    inverse_role_family,
    mddlog_to_omq_curve,
    simple_mddlog_family,
)
from repro.translations import alc_aq_to_mddlog, mddlog_to_alc_aq


def test_disjunctive_cover_family_sizes_grow_linearly():
    sizes = [disjunctive_cover_family(i).size() for i in range(1, 5)]
    deltas = {sizes[i + 1] - sizes[i] for i in range(len(sizes) - 1)}
    assert len(deltas) == 1  # constant increments: linear growth


def test_forward_translation_blowup_is_exponential():
    curve = aq_to_mddlog_curve(range(1, 5))
    assert classify_growth(curve) == "exponential"
    # Source sizes stay linear while target sizes at least double per step.
    for first, second in zip(curve, curve[1:]):
        assert second.source_size - first.source_size <= 10
        assert second.target_size >= 2 * first.target_size


def test_reverse_translation_is_linear():
    curve = mddlog_to_omq_curve(range(1, 8))
    assert classify_growth(curve) == "polynomial"
    deltas = {
        curve[i + 1].target_size - curve[i].target_size for i in range(len(curve) - 1)
    }
    assert max(deltas) - min(deltas) <= 2


def test_inverse_elimination_is_polynomial():
    curve = inverse_elimination_curve(range(1, 6))
    assert classify_growth(curve) == "polynomial"
    for point in curve:
        assert point.target_size <= 4 * point.source_size + 4


def test_translated_families_are_semantically_usable():
    omq = disjunctive_cover_family(2)
    program = alc_aq_to_mddlog(omq)
    assert program.is_monadic()
    rebuilt = mddlog_to_alc_aq(simple_mddlog_family(2))
    assert rebuilt.is_atomic()


def test_inverse_role_family_uses_inverse_roles():
    assert inverse_role_family(3).ontology.uses_inverse_roles()
