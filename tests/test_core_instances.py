"""Tests for schemas, facts, instances and marked instances."""

import pytest

from repro.core import (
    Fact,
    Instance,
    MarkedInstance,
    RelationSymbol,
    Schema,
    singleton_instance,
)

R = RelationSymbol("R", 2)
A = RelationSymbol("A", 1)


def test_relation_symbol_equality_and_call():
    assert RelationSymbol("R", 2) == R
    fact = R("a", "b")
    assert isinstance(fact, Fact)
    assert fact.arguments == ("a", "b")


def test_relation_symbol_rejects_negative_arity():
    with pytest.raises(ValueError):
        RelationSymbol("R", -1)


def test_schema_binary_constructor():
    schema = Schema.binary(["A", "B"], ["R"])
    assert schema["A"].arity == 1
    assert schema["R"].arity == 2
    assert schema.is_binary()
    assert len(schema) == 3


def test_schema_conflicting_arities_rejected():
    with pytest.raises(ValueError):
        Schema([RelationSymbol("R", 1), RelationSymbol("R", 2)])


def test_schema_union_and_restrict():
    first = Schema([A])
    second = Schema([R])
    union = first | second
    assert A in union and R in union
    assert union.restrict(["A"]).names == ("A",)
    assert union.without(["A"]).names == ("R",)


def test_fact_arity_checked():
    with pytest.raises(ValueError):
        Fact(R, ("a",))


def test_instance_active_domain_and_tuples():
    instance = Instance([Fact(R, ("a", "b")), Fact(A, ("a",))])
    assert instance.active_domain == {"a", "b"}
    assert instance.tuples(R) == {("a", "b")}
    assert instance.tuples("A") == {("a",)}
    assert instance.tuples("missing") == frozenset()


def test_instance_schema_inference_and_explicit_schema():
    instance = Instance([Fact(A, ("a",))])
    assert A in instance.schema
    explicit = Schema([A, R])
    wider = Instance([Fact(A, ("a",))], schema=explicit)
    assert R in wider.schema
    with pytest.raises(ValueError):
        Instance([Fact(R, ("a", "b"))], schema=Schema([A]))


def test_instance_set_operations():
    base = Instance([Fact(A, ("a",))])
    extended = base.with_facts([Fact(R, ("a", "b"))])
    assert len(extended) == 2
    assert base == extended.without_facts([Fact(R, ("a", "b"))])
    assert (base | extended) == extended


def test_instance_restrictions_and_rename():
    instance = Instance([Fact(R, ("a", "b")), Fact(A, ("c",))])
    restricted = instance.restrict_to_domain(["a", "b"])
    assert restricted.tuples(R) == {("a", "b")}
    assert not restricted.tuples(A)
    renamed = instance.rename({"a": "x"})
    assert ("x", "b") in renamed.tuples(R)
    reduct = instance.restrict_to_schema(Schema([A]))
    assert len(reduct) == 1


def test_from_tuples_builder():
    schema = Schema.binary(["A"], ["R"])
    instance = Instance.from_tuples(schema, {"A": [("a",)], "R": [("a", "b")]})
    assert len(instance) == 2


def test_marked_instance_validation():
    instance = Instance([Fact(A, ("a",))])
    marked = MarkedInstance(instance, ("a",))
    assert marked.arity == 1
    with pytest.raises(ValueError):
        MarkedInstance(instance, ("missing",))


def test_marked_instance_expansion():
    instance = Instance([Fact(A, ("a",)), Fact(R, ("a", "b"))])
    marked = MarkedInstance(instance, ("b",))
    expanded = marked.to_unmarked([RelationSymbol("P1", 1)])
    assert ("b",) in expanded.tuples("P1")


def test_singleton_instance():
    instance = singleton_instance({"S": 1, "T": 2}, element="x")
    assert instance.active_domain == {"x"}
    assert ("x", "x") in instance.tuples("T")


def test_disjoint_union_keeps_parts_apart():
    left = Instance([Fact(A, ("a",))])
    right = Instance([Fact(A, ("a",))])
    union = left.disjoint_union(right)
    assert len(union.active_domain) == 2
