"""Semantic rewritability routing: construction, budgets, forcing, serving.

Pins the planner's semantic stage (:mod:`repro.planner.semantic`) end to
end: Theorem 3.3 compilations of FO-/datalog-rewritable atomic OMQs route
off SAT onto constructed rewritings (obstruction-set UCQs on tier 0,
canonical datalog on tier 1) with answers cross-validated against the
ground+CDCL engine; budget exhaustion, inapplicability, missing tree
duality and ``force_tier`` all keep (or pin) the program on tier 2 with an
explainable rationale.
"""

import random

import pytest

from repro.core import Fact, Instance, RelationSymbol
from repro.core.cq import atomic_query
from repro.core.schema import Schema
from repro.csp.canonical_datalog import has_tree_duality
from repro.datalog import evaluate
from repro.dl import ConceptInclusion, ConceptName, Exists, Ontology, Role
from repro.obda.applications import plan_omq_workload, serve_omq_workload
from repro.omq.certain import compile_to_mddlog
from repro.omq.query import OntologyMediatedQuery
from repro.planner import (
    TIER_FIXPOINT,
    TIER_GROUND_SAT,
    TIER_REWRITE,
    SemanticBudget,
    cross_validate,
    plan_for_tier,
    plan_program,
)
from repro.service import ObdaSession, ShardedObdaSession
from repro.service.session import _FixpointState, _SatState, _UcqState
from repro.translations.csp_templates import csp_to_mddlog
from repro.workloads.csp_zoo import (
    three_colourability_template,
    two_colourability_template,
)

HAS_DIAGNOSIS = RelationSymbol("HasDiagnosis", 2)
HAS_PARENT = RelationSymbol("HasParent", 2)
LYME = RelationSymbol("LymeDisease", 1)
LISTERIOSIS = RelationSymbol("Listeriosis", 1)
BACTERIAL = RelationSymbol("BacterialInfection", 1)
PREDISPOSITION = RelationSymbol("HereditaryPredisposition", 1)
EDGE = RelationSymbol("edge", 2)


def fo_rewritable_omq() -> OntologyMediatedQuery:
    """q1(x) = BacterialInfection(x) under the Example 2.2 subsumptions:
    FO-rewritable (the paper's UCQ rewriting adds the Lyme / Listeriosis
    disjuncts), with a small enough type space for the semantic budget."""
    return OntologyMediatedQuery(
        ontology=Ontology(
            [
                ConceptInclusion(
                    ConceptName("LymeDisease"), ConceptName("BacterialInfection")
                ),
                ConceptInclusion(
                    ConceptName("Listeriosis"), ConceptName("BacterialInfection")
                ),
            ]
        ),
        query=atomic_query("BacterialInfection"),
        data_schema=Schema.binary(
            concept_names=["LymeDisease", "Listeriosis", "BacterialInfection"],
            role_names=["HasDiagnosis"],
        ),
    )


def datalog_rewritable_omq() -> OntologyMediatedQuery:
    """The Example 4.5 query: datalog- but not FO-rewritable (recursion
    through HasParent), with a width-1 (tree-duality) template."""
    return OntologyMediatedQuery(
        ontology=Ontology(
            [
                ConceptInclusion(
                    Exists(
                        Role("HasParent"), ConceptName("HereditaryPredisposition")
                    ),
                    ConceptName("HereditaryPredisposition"),
                )
            ]
        ),
        query=atomic_query("HereditaryPredisposition"),
        data_schema=Schema.binary(
            concept_names=["HereditaryPredisposition"], role_names=["HasParent"]
        ),
    )


def medical_fo_instance() -> Instance:
    return Instance(
        [
            Fact(LYME, ("d1",)),
            Fact(HAS_DIAGNOSIS, ("p1", "d1")),
            Fact(LISTERIOSIS, ("d2",)),
            Fact(BACTERIAL, ("p3",)),
            Fact(HAS_DIAGNOSIS, ("p4", "d9")),  # d9 carries no concept
        ]
    )


def ancestry_chain(depth: int, predisposed_root: bool = True) -> Instance:
    facts = [
        Fact(HAS_PARENT, (f"g{i}", f"g{i + 1}")) for i in range(depth)
    ]
    if predisposed_root:
        facts.append(Fact(PREDISPOSITION, (f"g{depth}",)))
    return Instance(facts)


# ---------------------------------------------------------------------------
# Construction: compiled OMQs route onto materialized rewritings
# ---------------------------------------------------------------------------


def test_compiled_fo_rewritable_routes_to_tier0():
    program = compile_to_mddlog(fo_rewritable_omq())
    assert plan_program(program, semantic=False).tier == TIER_GROUND_SAT
    plan = plan_program(program)
    assert plan.tier == TIER_REWRITE
    assert plan.skips_sat
    assert plan.unfolding is not None and plan.unfolding.goal_disjuncts
    report = plan.semantic
    assert report is not None and report.applicable
    assert report.route == "source-omq"
    assert report.fo_rewritable and report.rewriting == "obstruction-ucq"
    assert report.validated_instances > 0
    assert "semantic" in plan.describe()


def test_compiled_fo_rewritable_answers_match_forced_tier2():
    program = compile_to_mddlog(fo_rewritable_omq())
    instance = medical_fo_instance()
    routed = evaluate(program, instance)
    forced = evaluate(program, instance, force_tier=TIER_GROUND_SAT)
    assert routed == forced == frozenset({("d1",), ("d2",), ("p3",)})


def test_compiled_datalog_rewritable_routes_to_tier1():
    program = compile_to_mddlog(datalog_rewritable_omq())
    plan = plan_program(program)
    assert plan.tier == TIER_FIXPOINT
    assert plan.rewritten is not None
    assert plan.execution_program is plan.rewritten
    report = plan.semantic
    assert report is not None and report.applicable
    assert report.fo_rewritable is False and report.datalog_rewritable
    assert report.rewriting == "canonical-datalog"
    assert plan.describe()["rewritten_rules"] == len(plan.rewritten.rules)


def test_compiled_datalog_rewritable_answers_match_on_deep_chains():
    """The canonical program recurses through chains far beyond the
    cross-validation family's size."""
    program = compile_to_mddlog(datalog_rewritable_omq())
    for depth, predisposed in [(6, True), (6, False), (10, True)]:
        instance = ancestry_chain(depth, predisposed)
        routed = evaluate(program, instance)
        forced = evaluate(program, instance, force_tier=TIER_GROUND_SAT)
        assert routed == forced
        if predisposed:
            assert (f"g{0}",) in routed


def test_cross_validate_is_a_public_hook():
    program = compile_to_mddlog(fo_rewritable_omq())
    plan = plan_program(program)
    assert cross_validate(program, plan) > 0


# ---------------------------------------------------------------------------
# Budgets and degradation
# ---------------------------------------------------------------------------


def test_exhausted_time_budget_routes_to_tier2_with_rationale():
    program = compile_to_mddlog(fo_rewritable_omq())
    budget = SemanticBudget(time_budget_s=0.0)
    plan = plan_program(program, budget=budget)
    assert plan.tier == TIER_GROUND_SAT
    assert plan.semantic is not None and not plan.semantic.applicable
    assert "semantic budget exceeded" in plan.semantic.rationale
    assert "wall-clock budget" in plan.semantic.rationale


def test_size_gate_routes_to_tier2_with_rationale():
    program = compile_to_mddlog(fo_rewritable_omq())
    budget = SemanticBudget(max_template_elements=1)
    plan = plan_program(program, budget=budget)
    assert plan.tier == TIER_GROUND_SAT
    assert "semantic budget exceeded" in plan.semantic.rationale
    assert "element" in plan.semantic.rationale


def test_budget_gated_plan_still_serves_identical_answers():
    program = compile_to_mddlog(fo_rewritable_omq())
    budget = SemanticBudget(time_budget_s=0.0)
    instance = medical_fo_instance()
    gated = evaluate(program, instance, semantic_budget=budget)
    assert gated == evaluate(program, instance, force_tier=TIER_GROUND_SAT)


def test_semantic_plans_cached_per_budget():
    program = compile_to_mddlog(fo_rewritable_omq())
    gated = SemanticBudget(max_template_elements=1)  # deterministic size gate
    assert plan_program(program, budget=gated) is plan_program(program, budget=gated)
    assert plan_program(program).tier != plan_program(program, budget=gated).tier


def test_transient_deadline_verdicts_are_not_cached():
    """A tripped wall-clock deadline reflects machine load, not program
    structure: the degraded plan must be re-analysed on the next call
    instead of pinning the query to tier 2 forever."""
    program = compile_to_mddlog(fo_rewritable_omq())
    tight = SemanticBudget(time_budget_s=0.0)
    first = plan_program(program, budget=tight)
    assert first.tier == TIER_GROUND_SAT and first.semantic.transient
    assert "transient" in first.semantic.describe()
    second = plan_program(program, budget=tight)
    assert second is not first  # re-analysed, not served from cache
    # ...and a later call with a sane budget recovers the rewriting.
    assert plan_program(program).tier == TIER_REWRITE


def test_plan_caches_die_with_the_program():
    """Regression: plans are cached on the program object, not in a global
    mapping whose values strongly reference the keys — dropping the
    program must free the plan and its materialized rewriting."""
    import gc
    import weakref

    program = compile_to_mddlog(datalog_rewritable_omq())
    plan = plan_program(program)
    assert plan.rewritten is not None
    program_ref = weakref.ref(program)
    plan_ref = weakref.ref(plan)
    del program, plan
    gc.collect()
    assert program_ref() is None
    assert plan_ref() is None


def test_full_medical_compilation_is_inapplicable_not_wrong():
    """The Example 2.1 CQ is outside the Theorem 4.6 atomic fragment; the
    semantic stage must say so (and the huge compiled program must never
    reach the template construction)."""
    from repro.workloads.medical import example_2_1_omq

    program = compile_to_mddlog(example_2_1_omq())
    plan = plan_program(program)
    assert plan.tier == TIER_GROUND_SAT
    assert plan.semantic is not None
    assert "inapplicable" in plan.semantic.rationale


# ---------------------------------------------------------------------------
# Forcing overrides semantic routing; the knob disables it
# ---------------------------------------------------------------------------


def test_force_tier_overrides_semantic_routing():
    program = compile_to_mddlog(fo_rewritable_omq())
    assert plan_program(program).tier == TIER_REWRITE  # semantic would route
    forced = plan_for_tier(program, TIER_GROUND_SAT)
    assert forced.tier == TIER_GROUND_SAT and forced.rewritten is None
    instance = medical_fo_instance()
    assert evaluate(program, instance, force_tier=TIER_GROUND_SAT) == evaluate(
        program, instance
    )
    session = ObdaSession(program, force_tier=TIER_GROUND_SAT)
    assert isinstance(session._state(None), _SatState)


def test_semantic_disabled_keeps_syntactic_plan():
    program = compile_to_mddlog(fo_rewritable_omq())
    plan = plan_program(program, semantic=False)
    assert plan.tier == TIER_GROUND_SAT
    assert plan.semantic is None and plan.rewritten is None


# ---------------------------------------------------------------------------
# The MMSNP/MDDlog bridge for unhinted programs
# ---------------------------------------------------------------------------


def arrow_template() -> Instance:
    schema = Schema.binary(concept_names=[], role_names=["edge"])
    return Instance([Fact(EDGE, ("a", "b"))], schema=schema)


def test_bridge_routes_unhinted_fo_program():
    """coCSP(a→b) — true iff the graph has a loop or a 2-path — is
    FO-rewritable; the bare csp_to_mddlog program has no source hint, so
    the MMSNP bridge must reconstruct the templates, and the obstruction
    bounds must escalate past (2,2) (the 2-path obstruction has three
    elements, so the first bound fails cross-validation)."""
    program = csp_to_mddlog(arrow_template())
    plan = plan_program(program)
    assert plan.tier == TIER_REWRITE
    assert plan.semantic.route == "mmsnp-bridge"
    assert "(3, 3)" in plan.semantic.rationale
    rng = random.Random(5)
    for _ in range(20):
        size = rng.randint(1, 5)
        facts = [
            Fact(EDGE, (i, j))
            for i in range(size)
            for j in range(size)
            if rng.random() < 0.3
        ]
        instance = Instance(facts)
        assert evaluate(program, instance) == evaluate(
            program, instance, force_tier=TIER_GROUND_SAT
        )


def test_bridge_disabled_by_budget():
    program = csp_to_mddlog(arrow_template())
    plan = plan_program(program, budget=SemanticBudget(bridge=False))
    assert plan.tier == TIER_GROUND_SAT
    assert "bridge is disabled" in plan.semantic.rationale


def test_k2_bounded_width_without_tree_duality_stays_tier2():
    """coCSP(K2) is datalog-rewritable (width 2) but has no tree duality,
    so the only constructible (width-1) rewriting would be incomplete —
    the planner must refuse it rather than serve wrong answers on odd
    cycles."""
    program = csp_to_mddlog(two_colourability_template())
    plan = plan_program(program)
    assert plan.tier == TIER_GROUND_SAT
    assert plan.semantic.datalog_rewritable is True
    assert "tree duality" in plan.semantic.rationale
    triangle = Instance(
        [Fact(EDGE, (1, 2)), Fact(EDGE, (2, 3)), Fact(EDGE, (3, 1))]
    )
    assert evaluate(program, triangle) == frozenset({()})


def test_k3_is_semantically_confirmed_disjunctive():
    """coCSP(K3) must not merely *fall back* to tier 2 — the procedures run
    to completion and certify that no rewriting exists (NP-hard template:
    no finite duality, no bounded-width certificate)."""
    program = csp_to_mddlog(three_colourability_template())
    plan = plan_program(program)
    assert plan.tier == TIER_GROUND_SAT
    assert plan.semantic.applicable
    assert plan.semantic.fo_rewritable is False
    assert plan.semantic.datalog_rewritable is False
    assert "semantically confirmed disjunctive" in plan.semantic.rationale


def test_tree_duality_classifier():
    assert not has_tree_duality(two_colourability_template())
    assert not has_tree_duality(three_colourability_template())
    assert has_tree_duality(arrow_template())
    loop = Instance([Fact(EDGE, ("a", "a"))])
    assert has_tree_duality(loop)


# ---------------------------------------------------------------------------
# Serving: sessions and shards run the constructed rewritings
# ---------------------------------------------------------------------------


def test_session_serves_semantic_tier0_state():
    program = compile_to_mddlog(fo_rewritable_omq())
    session = ObdaSession(program)
    assert isinstance(session._state(None), _UcqState)
    explanation = session.explain()["queries"]["q"]
    assert explanation["tier"] == TIER_REWRITE
    assert explanation["semantic"]["rewriting"] == "obstruction-ucq"
    forced = ObdaSession(program, force_tier=TIER_GROUND_SAT)
    universe = sorted(medical_fo_instance().facts, key=str)
    rng = random.Random(17)
    live: set[Fact] = set()
    for _ in range(20):
        free = [f for f in universe if f not in live]
        if free and (not live or rng.random() < 0.6):
            batch = rng.sample(free, min(len(free), 2))
            live.update(batch)
            session.insert_facts(batch)
            forced.insert_facts(batch)
        else:
            batch = rng.sample(sorted(live, key=str), 1)
            live.difference_update(batch)
            session.delete_facts(batch)
            forced.delete_facts(batch)
        assert session.certain_answers() == forced.certain_answers()


def test_session_serves_semantic_tier1_state_with_deletions():
    """The parameterized canonical program is DRed-maintained: inserts and
    deletes on an ancestry chain agree with forced tier 2 throughout."""
    program = compile_to_mddlog(datalog_rewritable_omq())
    session = ObdaSession(program)
    assert isinstance(session._state(None), _FixpointState)
    forced = ObdaSession(program, force_tier=TIER_GROUND_SAT)
    chain = sorted(ancestry_chain(4).facts, key=str)
    session.insert_facts(chain)
    forced.insert_facts(chain)
    assert session.certain_answers() == forced.certain_answers()
    assert ("g0",) in session.certain_answers()
    # cut the chain: descendants below the cut lose the predisposition
    cut = [Fact(HAS_PARENT, ("g1", "g2"))]
    session.delete_facts(cut)
    forced.delete_facts(cut)
    assert session.certain_answers() == forced.certain_answers()
    assert ("g0",) not in session.certain_answers()
    session.insert_facts(cut)
    forced.insert_facts(cut)
    assert session.certain_answers() == forced.certain_answers()
    assert ("g0",) in session.certain_answers()


def test_sharded_session_shares_semantic_plan():
    program = compile_to_mddlog(fo_rewritable_omq())
    sharded = ShardedObdaSession(program, shards=2)
    assert sharded.plan().tier == TIER_REWRITE
    facts = [
        Fact(LYME, (f"d{i}",)) for i in range(4)
    ] + [Fact(HAS_DIAGNOSIS, (f"p{i}", f"d{i}")) for i in range(4)]
    sharded.insert_facts(facts)
    single = ObdaSession(program, initial_facts=facts)
    assert sharded.certain_answers() == single.certain_answers()


def test_serve_and_plan_workload_expose_semantic_routing():
    plans = plan_omq_workload(
        {
            "fo": fo_rewritable_omq(),
            "datalog": datalog_rewritable_omq(),
        }
    )
    assert plans["fo"].tier == TIER_REWRITE
    assert plans["datalog"].tier == TIER_FIXPOINT
    syntactic = plan_omq_workload({"fo": fo_rewritable_omq()}, semantic=False)
    assert syntactic["fo"].tier == TIER_GROUND_SAT
    session = serve_omq_workload(fo_rewritable_omq())
    assert session.plan().tier == TIER_REWRITE
    gated = serve_omq_workload(
        fo_rewritable_omq(), semantic_budget=SemanticBudget(time_budget_s=0.0)
    )
    assert gated.plan().tier == TIER_GROUND_SAT


# ---------------------------------------------------------------------------
# Consistency artifacts: is_consistent and the sharded vacuous escalation
# ---------------------------------------------------------------------------


def inconsistency_capable_fo_omq() -> OntologyMediatedQuery:
    """Lyme ⊑ Bacterial plus Lyme ⊓ Viral ⊑ ⊥: FO-rewritable, and data can
    contradict the ontology (the no-model case)."""
    from repro.dl.concepts import And, Bottom

    return OntologyMediatedQuery(
        ontology=Ontology(
            [
                ConceptInclusion(
                    ConceptName("LymeDisease"), ConceptName("BacterialInfection")
                ),
                ConceptInclusion(
                    And(ConceptName("LymeDisease"), ConceptName("Viral")), Bottom()
                ),
            ]
        ),
        query=atomic_query("BacterialInfection"),
        data_schema=Schema.binary(
            concept_names=["LymeDisease", "Viral", "BacterialInfection"],
            role_names=["R"],
        ),
    )


def test_semantic_tier0_plans_report_inconsistency():
    """Regression: the obstruction UCQ must carry *constraint* disjuncts so
    a routed session's is_consistent matches the solver's verdict (it used
    to report True unconditionally)."""
    program = compile_to_mddlog(inconsistency_capable_fo_omq())
    plan = plan_program(program)
    assert plan.tier == TIER_REWRITE
    assert plan.unfolding.constraint_disjuncts
    viral = RelationSymbol("Viral", 1)
    facts = [Fact(LYME, ("a",)), Fact(viral, ("a",)), Fact(EDGE, ("p", "q"))]
    routed = ObdaSession(program, initial_facts=facts)
    forced = ObdaSession(program, initial_facts=facts, force_tier=TIER_GROUND_SAT)
    assert routed.is_consistent() is forced.is_consistent() is False
    assert (
        routed.certain_answers()
        == forced.certain_answers()
        == frozenset({("a",), ("p",), ("q",)})
    )
    consistent = [Fact(LYME, ("a",)), Fact(EDGE, ("p", "q"))]
    routed2 = ObdaSession(program, initial_facts=consistent)
    assert routed2.is_consistent()
    assert routed2.certain_answers() == frozenset({("a",)})


def test_sharded_semantic_session_escalates_inconsistency():
    """Regression: the sharded merge relies on per-shard is_consistent to
    escalate to global vacuous answers; a semantically routed plan whose
    inconsistency lives on one shard must still make tuples on *other*
    shards certain."""
    program = compile_to_mddlog(inconsistency_capable_fo_omq())
    viral = RelationSymbol("Viral", 1)
    facts = [Fact(LYME, ("a",)), Fact(viral, ("a",)), Fact(EDGE, ("p", "q"))]
    sharded = ShardedObdaSession(program, shards=2, initial_facts=facts)
    single = ObdaSession(program, initial_facts=facts)
    assert sharded.certain_answers() == single.certain_answers()
    assert ("p",) in sharded.certain_answers()  # the globally vacuous part


def test_semantic_tier1_plans_report_inconsistency():
    """Regression: the canonical datalog rewriting carries a Y_∅-based
    constraint, so derived inconsistencies (recursion reaching a forbidden
    concept) flip is_consistent exactly like the solver."""
    from repro.dl.concepts import And, Bottom

    omq = OntologyMediatedQuery(
        ontology=Ontology(
            [
                ConceptInclusion(
                    Exists(
                        Role("HasParent"), ConceptName("HereditaryPredisposition")
                    ),
                    ConceptName("HereditaryPredisposition"),
                ),
                ConceptInclusion(
                    And(
                        ConceptName("HereditaryPredisposition"),
                        ConceptName("ClearedByTest"),
                    ),
                    Bottom(),
                ),
            ]
        ),
        query=atomic_query("HereditaryPredisposition"),
        data_schema=Schema.binary(
            concept_names=["HereditaryPredisposition", "ClearedByTest"],
            role_names=["HasParent"],
        ),
    )
    program = compile_to_mddlog(omq)
    plan = plan_program(program)
    assert plan.tier == TIER_FIXPOINT
    assert any(rule.is_constraint() for rule in plan.rewritten.rules)
    clear = RelationSymbol("ClearedByTest", 1)
    facts = [
        Fact(HAS_PARENT, ("g0", "g1")),
        Fact(PREDISPOSITION, ("g1",)),
        Fact(clear, ("g0",)),
    ]
    routed = ObdaSession(program, initial_facts=facts)
    forced = ObdaSession(program, initial_facts=facts, force_tier=TIER_GROUND_SAT)
    assert routed.is_consistent() is forced.is_consistent() is False
    assert routed.certain_answers() == forced.certain_answers()
    routed.delete_facts([Fact(clear, ("g0",))])
    forced.delete_facts([Fact(clear, ("g0",))])
    assert routed.is_consistent() is forced.is_consistent() is True
    assert routed.certain_answers() == forced.certain_answers()


@pytest.mark.parametrize("seed", range(6))
def test_randomized_streams_match_forced_tier2(seed):
    """Randomized insert/delete/query streams on both rewriting kinds."""
    rng = random.Random(31_000 + seed)
    omq = fo_rewritable_omq() if seed % 2 else datalog_rewritable_omq()
    program = compile_to_mddlog(omq)
    if seed % 2:
        universe = [Fact(LYME, (e,)) for e in "uvw"] + [
            Fact(BACTERIAL, (e,)) for e in "uv"
        ] + [Fact(HAS_DIAGNOSIS, (a, b)) for a in "uv" for b in "vw"]
    else:
        universe = [Fact(PREDISPOSITION, (e,)) for e in "uv"] + [
            Fact(HAS_PARENT, (a, b)) for a in "uvw" for b in "uvw" if a != b
        ]
    session = ObdaSession(program)
    forced = ObdaSession(program, force_tier=TIER_GROUND_SAT)
    live: set[Fact] = set()
    for _ in range(15):
        free = [f for f in universe if f not in live]
        if free and (not live or rng.random() < 0.65):
            batch = rng.sample(free, min(len(free), rng.randint(1, 2)))
            live.update(batch)
            session.insert_facts(batch)
            forced.insert_facts(batch)
        else:
            batch = rng.sample(sorted(live, key=str), 1)
            live.difference_update(batch)
            session.delete_facts(batch)
            forced.delete_facts(batch)
        assert session.certain_answers() == forced.certain_answers()
