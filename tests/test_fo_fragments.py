"""Tests for FO formulas, evaluation, and the GFO / UNFO / GNFO checkers."""

from repro.core import Fact, Instance, RelationSymbol, Variable
from repro.fo import (
    Equality,
    NotF,
    atom,
    conjunction,
    disjunction,
    exists,
    forall,
    fragment_of,
    is_gfo,
    is_gnfo,
    is_unfo,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")
R = RelationSymbol("R", 2)
A = RelationSymbol("A", 1)


def test_formula_evaluation():
    data = Instance([Fact(R, (1, 2)), Fact(A, (2,))])
    formula = exists((x, y), atom("R", x, y) & atom("A", y))
    assert formula.evaluate(data)
    negated = NotF(exists((x, y), atom("R", x, y) & atom("R", y, x)))
    assert negated.evaluate(data)


def test_formula_answers():
    data = Instance([Fact(R, (1, 2)), Fact(R, (2, 3))])
    formula = exists(y, atom("R", x, y))
    assert formula.answers(data, (x,)) == {(1,), (2,)}


def test_free_variables_and_size():
    formula = forall(y, atom("R", x, y).implies(atom("A", y)))
    assert formula.free_variables() == {x}
    assert formula.size() >= 3
    assert conjunction([]).evaluate(Instance([Fact(A, (1,))]))
    assert not disjunction([]).evaluate(Instance([Fact(A, (1,))]))


def test_unfo_membership():
    # ¬∃xy R(x,y) is in UNFO; ∃xy ¬R(x,y) is not.
    inside = NotF(exists((x, y), atom("R", x, y)))
    outside = exists((x, y), NotF(atom("R", x, y)))
    assert is_unfo(inside)
    assert not is_unfo(outside)


def test_gfo_membership():
    guarded = forall((x, y), atom("R", x, y).implies(atom("A", x)))
    assert is_gfo(guarded)
    unguarded = forall((x, y), atom("A", x).implies(atom("A", y)))
    assert not is_gfo(unguarded)
    trivially_guarded = exists(x, Equality(x, x) & atom("A", x))
    assert is_gfo(trivially_guarded)


def test_gnfo_contains_unfo_and_gfo_examples():
    unfo_formula = NotF(exists((x, y), atom("R", x, y)))
    assert is_gnfo(unfo_formula)
    guarded_negation = exists((x, y), atom("R", x, y) & NotF(atom("R", y, x)))
    assert is_gnfo(guarded_negation)
    assert not is_unfo(guarded_negation)


def test_fragment_of_reports_all_memberships():
    formula = atom("A", x)
    assert fragment_of(formula) == {"UNFO", "GFO", "GNFO"}


def test_example_table_1_guarded_sentences():
    """The guarded-fragment sentences of Table I are recognised as GFO."""
    from repro.dl import ontology_to_fo
    from repro.workloads.medical import medical_ontology

    for sentence in ontology_to_fo(medical_ontology()):
        assert is_gfo(sentence)
        assert is_gnfo(sentence)
