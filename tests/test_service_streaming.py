"""Incremental correctness of the OBDA serving layer.

Randomized insert/delete/query streams are replayed through
:class:`ObdaSession` and every answer is cross-validated against a fresh
from-scratch recomputation (``ground_program(...).certain_answers()``) over
the instance as it stands — the serving layer is only allowed to be faster,
never different.
"""

import random

import pytest

from repro.core import Atom, Fact, Instance, RelationSymbol, Variable
from repro.datalog import DisjunctiveDatalogProgram, Rule, adom_atom, goal_atom
from repro.datalog.plain import DatalogProgram
from repro.engine.grounder import ground_program
from repro.omq.certain import compile_to_mddlog
from repro.service import (
    IncrementalFixpoint,
    ObdaSession,
    graph_universe,
    medical_universe,
    random_stream,
    replay,
)
from repro.service.session import _FixpointState, _SatState
from repro.translations.csp_templates import csp_to_mddlog
from repro.workloads.csp_zoo import two_colourability_template
from repro.workloads.medical import example_2_1_omq, patient_instance

A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
EDGE = RelationSymbol("edge", 2)
P = RelationSymbol("P", 1)
Q = RelationSymbol("Q", 1)
X, Y = Variable("x"), Variable("y")


def _random_body(rng):
    pool = []
    for symbol in (A, B, EDGE, P, Q):
        if symbol.arity == 1:
            pool.extend([Atom(symbol, (X,)), Atom(symbol, (Y,))])
        else:
            pool.extend(
                [Atom(symbol, (X, Y)), Atom(symbol, (Y, X)), Atom(symbol, (X, X))]
            )
    pool.extend([adom_atom(X), adom_atom(Y)])
    return tuple(rng.sample(pool, rng.randint(1, 3)))


def _random_program(rng, goal_arity):
    rules = []
    for _ in range(rng.randint(2, 4)):
        body = _random_body(rng)
        body_vars = sorted({v for atom in body for v in atom.variables}, key=str)
        head_pool = [Atom(s, (v,)) for s in (P, Q) for v in body_vars]
        kind = rng.random()
        if kind < 0.25:
            head = ()
        elif kind < 0.55:
            if goal_arity == 0:
                head = (goal_atom(),)
            else:
                head = (goal_atom(rng.choice(body_vars)),)
        else:
            head = tuple(
                rng.sample(head_pool, min(len(head_pool), rng.randint(1, 2)))
            )
        rules.append(Rule(head, body))
    if not any(rule.is_goal_rule() for rule in rules):
        goal_head = (goal_atom(),) if goal_arity == 0 else (goal_atom(X),)
        rules.append(Rule(goal_head, (Atom(P, (X,)),)))
    return DisjunctiveDatalogProgram(rules)


def _fact_universe(domain):
    facts = []
    for element in domain:
        facts.extend([Fact(A, (element,)), Fact(B, (element,))])
    for source in domain:
        for target in domain:
            facts.append(Fact(EDGE, (source, target)))
    return facts


def _run_stream(rng, session, universe, steps, check_every=1):
    """Drive random updates, cross-validating against from-scratch answers."""
    live = set()
    for step in range(steps):
        free = [f for f in universe if f not in live]
        if free and (not live or rng.random() < 0.65):
            batch = rng.sample(free, min(len(free), rng.randint(1, 3)))
            live.update(batch)
            session.insert_facts(batch)
        else:
            batch = rng.sample(
                sorted(live, key=str), min(len(live), rng.randint(1, 3))
            )
            live.difference_update(batch)
            session.delete_facts(batch)
        assert session.instance == Instance(live)
        if step % check_every == 0:
            for name in session.query_names:
                got = session.certain_answers(name)
                expected = ground_program(
                    session.program(name), session.instance
                ).certain_answers()
                assert got == expected, (
                    f"step {step}: {sorted(got)} != {sorted(expected)}"
                )
    return live


@pytest.mark.parametrize("seed", range(12))
def test_random_streams_match_from_scratch(seed):
    rng = random.Random(seed)
    program = _random_program(rng, rng.choice([0, 1]))
    session = ObdaSession(program)
    _run_stream(rng, session, _fact_universe([1, 2, 3]), steps=18)


@pytest.mark.parametrize("seed", range(6))
def test_disjunctive_streams_use_guarded_solver(seed):
    """Force the SAT path (disjunctive head) and validate across churn."""
    rng = random.Random(100 + seed)
    rules = [
        Rule((Atom(P, (X,)), Atom(Q, (X,))), (adom_atom(X),)),
        Rule((), (Atom(P, (X,)), Atom(A, (X,)))),
        Rule((goal_atom(X),), (Atom(Q, (X,)), Atom(EDGE, (X, Y)))),
    ]
    program = DisjunctiveDatalogProgram(rules)
    session = ObdaSession(program)
    assert isinstance(session._state(None), _SatState)
    _run_stream(rng, session, _fact_universe([1, 2, 3]), steps=20)


@pytest.mark.parametrize("seed", range(6))
def test_plain_datalog_streams_use_incremental_fixpoint(seed):
    """Force the fixpoint path (disjunction-free) and validate across churn."""
    rng = random.Random(200 + seed)
    rules = [
        Rule((Atom(P, (X,)),), (Atom(A, (X,)),)),
        Rule((Atom(P, (Y,)),), (Atom(P, (X,)), Atom(EDGE, (X, Y)))),
        Rule((goal_atom(X),), (Atom(P, (X,)), Atom(B, (X,)))),
    ]
    program = DisjunctiveDatalogProgram(rules)
    session = ObdaSession(program)
    assert isinstance(session._state(None), _FixpointState)
    _run_stream(rng, session, _fact_universe([1, 2, 3, 4]), steps=22)


@pytest.mark.parametrize("seed", range(8))
def test_incremental_fixpoint_matches_least_fixpoint(seed):
    """IncrementalFixpoint (semi-naive + DRed) equals a fresh fixpoint."""
    rng = random.Random(300 + seed)
    rules = [
        Rule((Atom(P, (X,)),), (Atom(A, (X,)),)),
        Rule((Atom(P, (Y,)),), (Atom(P, (X,)), Atom(EDGE, (X, Y)))),
        Rule((Atom(Q, (X,)),), (Atom(P, (X,)), Atom(B, (X,)))),
        Rule((goal_atom(X),), (Atom(Q, (X,)), adom_atom(X))),
    ]
    program = DatalogProgram(rules)
    incremental = IncrementalFixpoint(program)
    universe = _fact_universe([1, 2, 3, 4])
    live = set()
    for _ in range(25):
        free = [f for f in universe if f not in live]
        if free and (not live or rng.random() < 0.6):
            batch = rng.sample(free, min(len(free), rng.randint(1, 4)))
            live.update(batch)
            incremental.insert(batch)
        else:
            batch = rng.sample(
                sorted(live, key=str), min(len(live), rng.randint(1, 4))
            )
            live.difference_update(batch)
            incremental.delete(batch)
        assert incremental.edb == Instance(live)
        assert incremental.fixpoint == program.least_fixpoint(Instance(live))


def test_medical_workload_session():
    """The Table 1 workload: compile once, stream updates, stay correct."""
    omq = example_2_1_omq()
    program = compile_to_mddlog(omq)
    session = ObdaSession(program, initial_facts=patient_instance().facts)
    assert session.certain_answers() == frozenset(
        {("patient1",), ("patient2",)}
    )
    # the session agrees with the OMQ engines on the same data
    assert session.certain_answers() == omq.certain_answers(patient_instance())
    # batch interface
    decided = session.answer_batch([("patient1",), ("jan12find1",)])
    assert decided == {("patient1",): True, ("jan12find1",): False}
    # a deletion retracts the Lyme-disease chain for patient1
    finding = Fact(RelationSymbol("ErythemaMigrans", 1), ("jan12find1",))
    session.delete_facts([finding])
    assert session.certain_answers() == frozenset({("patient2",)})
    # re-insertion reactivates the retracted epoch's clauses
    session.insert_facts([finding])
    assert session.certain_answers() == frozenset(
        {("patient1",), ("patient2",)}
    )


def test_medical_stream_replay_validates():
    program = compile_to_mddlog(example_2_1_omq())
    events = random_stream(
        medical_universe(patients=3, generations=3), length=12, seed=7, query_every=2
    )
    report = replay(ObdaSession(program), events, validate=True)
    assert report.validated and report.queries > 0


def test_csp_zoo_stream_replay_validates():
    """coCSP(K2) over a churning random graph: non-2-colourability serving."""
    program = csp_to_mddlog(two_colourability_template())
    events = random_stream(graph_universe(6, seed=3), length=30, seed=9)
    session = ObdaSession({"non2col": program})
    report = replay(session, events, validate=True)
    assert report.validated and report.queries == 30


def test_multi_query_workload_shares_the_stream():
    rules_reach = [
        Rule((Atom(P, (X,)),), (Atom(A, (X,)),)),
        Rule((Atom(P, (Y,)),), (Atom(P, (X,)), Atom(EDGE, (X, Y)))),
        Rule((goal_atom(X),), (Atom(P, (X,)),)),
    ]
    guess = [
        Rule((Atom(P, (X,)), Atom(Q, (X,))), (adom_atom(X),)),
        Rule((goal_atom(),), (Atom(P, (X,)), Atom(Q, (X,)))),
    ]
    session = ObdaSession(
        {
            "reach": DisjunctiveDatalogProgram(rules_reach),
            "guess": DisjunctiveDatalogProgram(guess),
        }
    )
    session.insert_facts(
        [Fact(A, (1,)), Fact(EDGE, (1, 2)), Fact(EDGE, (2, 3))]
    )
    answers = session.answer_all()
    assert answers["reach"] == frozenset({(1,), (2,), (3,)})
    for name in session.query_names:
        assert answers[name] == ground_program(
            session.program(name), session.instance
        ).certain_answers()
    with pytest.raises(ValueError):
        session.certain_answers()  # ambiguous without a name
    with pytest.raises(KeyError):
        session.certain_answers("missing")


def test_compact_preserves_answers_and_resets_state():
    rng = random.Random(42)
    program = _random_program(rng, 1)
    session = ObdaSession(program)
    _run_stream(rng, session, _fact_universe([1, 2, 3]), steps=12, check_every=3)
    before = session.certain_answers()
    session.compact()
    assert session.certain_answers() == before
    expected = ground_program(program, session.instance).certain_answers()
    assert before == expected


def test_session_stats_track_epochs():
    program = csp_to_mddlog(two_colourability_template())
    session = ObdaSession(program)
    edge = RelationSymbol("edge", 2)
    session.insert_facts([Fact(edge, ("a", "b"))])
    session.insert_facts([Fact(edge, ("b", "a"))])
    session.delete_facts([Fact(edge, ("a", "b"))])
    assert session.stats.epoch == 3
    assert session.stats.facts_inserted == 2
    assert session.stats.facts_deleted == 1
    assert [entry["op"] for entry in session.stats.epochs] == [
        "insert",
        "insert",
        "delete",
    ]
    # no-op updates do not advance the epoch
    session.insert_facts([Fact(edge, ("b", "a"))])
    session.delete_facts([Fact(edge, ("a", "b"))])
    assert session.stats.epoch == 3


def test_inconsistent_data_makes_every_tuple_certain():
    """Mirrors GroundProgram.certain_answers: no model -> vacuously certain."""
    program = DisjunctiveDatalogProgram(
        [
            Rule((), (Atom(A, (X,)),)),  # data with an A-fact is inconsistent
            Rule((goal_atom(X),), (Atom(B, (X,)),)),
        ]
    )
    session = ObdaSession(program)
    session.insert_facts([Fact(B, (1,))])
    assert session.certain_answers() == frozenset({(1,)})
    session.insert_facts([Fact(A, (2,))])
    assert session.certain_answers() == ground_program(
        program, session.instance
    ).certain_answers()
    assert session.certain_answers() == frozenset({(1,), (2,)})
    # deleting the offending fact restores consistency
    session.delete_facts([Fact(A, (2,))])
    assert session.certain_answers() == frozenset({(1,)})
