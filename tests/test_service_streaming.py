"""Incremental correctness of the OBDA serving layer.

Randomized insert/delete/query streams are replayed through
:class:`ObdaSession` and every answer is cross-validated against a fresh
from-scratch recomputation (``ground_program(...).certain_answers()``) over
the instance as it stands — the serving layer is only allowed to be faster,
never different.
"""

import functools
import random

import pytest

from repro.core import Atom, Fact, Instance, RelationSymbol, Variable
from repro.datalog import DisjunctiveDatalogProgram, Rule, adom_atom, goal_atom
from repro.datalog.plain import DatalogProgram
from repro.engine.grounder import ground_program
from repro.omq.certain import compile_to_mddlog
from repro.service import (
    IncrementalFixpoint,
    ObdaSession,
    ShardedObdaSession,
    graph_universe,
    is_shardable,
    medical_universe,
    random_stream,
    replay,
    shardability_violation,
)
from repro.service.session import _FixpointState, _SatState
from repro.translations.csp_templates import csp_to_mddlog
from repro.workloads.csp_zoo import two_colourability_template
from repro.workloads.medical import example_2_1_omq, patient_instance

A = RelationSymbol("A", 1)
B = RelationSymbol("B", 1)
EDGE = RelationSymbol("edge", 2)
P = RelationSymbol("P", 1)
Q = RelationSymbol("Q", 1)
X, Y = Variable("x"), Variable("y")


def _random_body(rng):
    pool = []
    for symbol in (A, B, EDGE, P, Q):
        if symbol.arity == 1:
            pool.extend([Atom(symbol, (X,)), Atom(symbol, (Y,))])
        else:
            pool.extend(
                [Atom(symbol, (X, Y)), Atom(symbol, (Y, X)), Atom(symbol, (X, X))]
            )
    pool.extend([adom_atom(X), adom_atom(Y)])
    return tuple(rng.sample(pool, rng.randint(1, 3)))


def _random_program(rng, goal_arity):
    rules = []
    for _ in range(rng.randint(2, 4)):
        body = _random_body(rng)
        body_vars = sorted({v for atom in body for v in atom.variables}, key=str)
        head_pool = [Atom(s, (v,)) for s in (P, Q) for v in body_vars]
        kind = rng.random()
        if kind < 0.25:
            head = ()
        elif kind < 0.55:
            if goal_arity == 0:
                head = (goal_atom(),)
            else:
                head = (goal_atom(rng.choice(body_vars)),)
        else:
            head = tuple(
                rng.sample(head_pool, min(len(head_pool), rng.randint(1, 2)))
            )
        rules.append(Rule(head, body))
    if not any(rule.is_goal_rule() for rule in rules):
        goal_head = (goal_atom(),) if goal_arity == 0 else (goal_atom(X),)
        rules.append(Rule(goal_head, (Atom(P, (X,)),)))
    return DisjunctiveDatalogProgram(rules)


def _fact_universe(domain):
    facts = []
    for element in domain:
        facts.extend([Fact(A, (element,)), Fact(B, (element,))])
    for source in domain:
        for target in domain:
            facts.append(Fact(EDGE, (source, target)))
    return facts


def _run_stream(rng, session, universe, steps, check_every=1):
    """Drive random updates, cross-validating against from-scratch answers."""
    live = set()
    for step in range(steps):
        free = [f for f in universe if f not in live]
        if free and (not live or rng.random() < 0.65):
            batch = rng.sample(free, min(len(free), rng.randint(1, 3)))
            live.update(batch)
            session.insert_facts(batch)
        else:
            batch = rng.sample(
                sorted(live, key=str), min(len(live), rng.randint(1, 3))
            )
            live.difference_update(batch)
            session.delete_facts(batch)
        assert session.instance == Instance(live)
        if step % check_every == 0:
            for name in session.query_names:
                got = session.certain_answers(name)
                expected = ground_program(
                    session.program(name), session.instance
                ).certain_answers()
                assert got == expected, (
                    f"step {step}: {sorted(got)} != {sorted(expected)}"
                )
    return live


@pytest.mark.parametrize("seed", range(12))
def test_random_streams_match_from_scratch(seed):
    rng = random.Random(seed)
    program = _random_program(rng, rng.choice([0, 1]))
    session = ObdaSession(program)
    _run_stream(rng, session, _fact_universe([1, 2, 3]), steps=18)


@pytest.mark.parametrize("seed", range(6))
def test_disjunctive_streams_use_guarded_solver(seed):
    """Force the SAT path (disjunctive head) and validate across churn."""
    rng = random.Random(100 + seed)
    rules = [
        Rule((Atom(P, (X,)), Atom(Q, (X,))), (adom_atom(X),)),
        Rule((), (Atom(P, (X,)), Atom(A, (X,)))),
        Rule((goal_atom(X),), (Atom(Q, (X,)), Atom(EDGE, (X, Y)))),
    ]
    program = DisjunctiveDatalogProgram(rules)
    session = ObdaSession(program)
    assert isinstance(session._state(None), _SatState)
    _run_stream(rng, session, _fact_universe([1, 2, 3]), steps=20)


@pytest.mark.parametrize("seed", range(6))
def test_plain_datalog_streams_use_incremental_fixpoint(seed):
    """Force the fixpoint path (disjunction-free) and validate across churn."""
    rng = random.Random(200 + seed)
    rules = [
        Rule((Atom(P, (X,)),), (Atom(A, (X,)),)),
        Rule((Atom(P, (Y,)),), (Atom(P, (X,)), Atom(EDGE, (X, Y)))),
        Rule((goal_atom(X),), (Atom(P, (X,)), Atom(B, (X,)))),
    ]
    program = DisjunctiveDatalogProgram(rules)
    session = ObdaSession(program)
    assert isinstance(session._state(None), _FixpointState)
    _run_stream(rng, session, _fact_universe([1, 2, 3, 4]), steps=22)


@pytest.mark.parametrize("seed", range(8))
def test_incremental_fixpoint_matches_least_fixpoint(seed):
    """IncrementalFixpoint (semi-naive + DRed) equals a fresh fixpoint."""
    rng = random.Random(300 + seed)
    rules = [
        Rule((Atom(P, (X,)),), (Atom(A, (X,)),)),
        Rule((Atom(P, (Y,)),), (Atom(P, (X,)), Atom(EDGE, (X, Y)))),
        Rule((Atom(Q, (X,)),), (Atom(P, (X,)), Atom(B, (X,)))),
        Rule((goal_atom(X),), (Atom(Q, (X,)), adom_atom(X))),
    ]
    program = DatalogProgram(rules)
    incremental = IncrementalFixpoint(program)
    universe = _fact_universe([1, 2, 3, 4])
    live = set()
    for _ in range(25):
        free = [f for f in universe if f not in live]
        if free and (not live or rng.random() < 0.6):
            batch = rng.sample(free, min(len(free), rng.randint(1, 4)))
            live.update(batch)
            incremental.insert(batch)
        else:
            batch = rng.sample(
                sorted(live, key=str), min(len(live), rng.randint(1, 4))
            )
            live.difference_update(batch)
            incremental.delete(batch)
        assert incremental.edb == Instance(live)
        assert incremental.fixpoint == program.least_fixpoint(Instance(live))


def _random_shardable_program(rng, goal_arity):
    """Random programs restricted to the shardable fragment (connected
    rule bodies, no constants, no nullary IDBs besides goal)."""
    while True:
        program = _random_program(rng, goal_arity)
        if is_shardable(program):
            return program


@pytest.mark.parametrize("seed", range(10))
def test_sharded_streams_match_from_scratch(seed):
    """Randomized insert/delete streams through a ShardedObdaSession equal
    the serial engine over the union instance, for every shard count —
    edge facts keep linking components, so migrations are exercised too."""
    rng = random.Random(400 + seed)
    program = _random_shardable_program(rng, rng.choice([0, 1]))
    shards = rng.choice([1, 2, 3])
    session = ShardedObdaSession(program, shards=shards)
    universe = _fact_universe([1, 2, 3, 4])
    live: set = set()
    for step in range(16):
        free = [f for f in universe if f not in live]
        if free and (not live or rng.random() < 0.6):
            batch = rng.sample(free, min(len(free), rng.randint(1, 3)))
            live.update(batch)
            session.insert_facts(batch)
        else:
            batch = rng.sample(
                sorted(live, key=str), min(len(live), rng.randint(1, 3))
            )
            live.difference_update(batch)
            session.delete_facts(batch)
        assert session.instance == Instance(live)
        got = session.certain_answers()
        expected = ground_program(program, Instance(live)).certain_answers()
        assert got == expected, (
            f"step {step}, {shards} shards: {sorted(got)} != {sorted(expected)}"
        )


@functools.cache
def _medical_program():
    return compile_to_mddlog(example_2_1_omq())


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_medical_workload_matches_single_session(shards):
    """The Table 1 workload sharded: bulk load, point deletes, batch
    queries — every answer equals the single-session serving layer.
    (The degenerate shards=1 case is covered by the randomized streams.)"""
    program = _medical_program()
    universe = medical_universe(patients=4, generations=3)
    single = ObdaSession(program, initial_facts=universe)
    sharded = ShardedObdaSession(program, shards=shards, initial_facts=universe)
    assert sharded.instance == single.instance
    assert sharded.certain_answers() == single.certain_answers()
    candidates = [("patient1",), ("patient2",), ("nobody",), ()]
    sharded_batch = sharded.answer_batch([c for c in candidates if c])
    single_batch = single.answer_batch([c for c in candidates if c])
    assert sharded_batch == single_batch
    victims = sorted(universe, key=str)[::3]
    sharded.delete_facts(victims)
    single.delete_facts(victims)
    assert sharded.certain_answers() == single.certain_answers()
    assert sum(sharded.shard_sizes()) == len(sharded.instance)


def test_sharded_binary_goal_routes_mixed_candidates():
    """Arity-2 goals: candidates within one component are decided by its
    shard; candidates mixing components (or unknown constants) are never
    certain while every shard is consistent."""
    from repro.datalog.ddlog import GOAL

    goal2 = RelationSymbol(GOAL, 2)
    program = DisjunctiveDatalogProgram(
        [
            Rule((Atom(P, (X,)), Atom(Q, (X,))), (adom_atom(X),)),
            Rule((Atom(goal2, (X, Y)),), (Atom(EDGE, (X, Y)), Atom(P, (X,)))),
            Rule((Atom(goal2, (X, Y)),), (Atom(EDGE, (X, Y)), Atom(Q, (X,)))),
        ],
        goal_relation=goal2,
    )
    facts = [Fact(EDGE, ("a", "b")), Fact(EDGE, ("c", "d")), Fact(EDGE, ("d", "c"))]
    session = ShardedObdaSession(program, shards=3)
    session.insert_facts(facts)
    expected = ground_program(program, Instance(facts)).certain_answers()
    assert session.certain_answers() == expected
    decided = session.answer_batch(
        [("a", "b"), ("a", "c"), ("c", "d"), ("zz", "a")]
    )
    assert decided == {
        ("a", "b"): True,
        ("a", "c"): False,  # spans two components
        ("c", "d"): True,
        ("zz", "a"): False,  # unknown constant
    }


def test_sharded_session_rejects_unshardable_programs():
    disconnected = DisjunctiveDatalogProgram(
        [Rule((goal_atom(X),), (Atom(A, (X,)), Atom(B, (Y,))))]
    )
    assert not is_shardable(disconnected)
    assert "not connected" in shardability_violation(disconnected)
    with pytest.raises(ValueError, match="cannot be sharded"):
        ShardedObdaSession(disconnected, shards=2)
    nullary = DisjunctiveDatalogProgram(
        [
            Rule((Atom(RelationSymbol("flag", 0), ()),), (Atom(A, (X,)),)),
            Rule((goal_atom(X),), (Atom(B, (X,)),)),
        ]
    )
    assert "nullary" in shardability_violation(nullary)
    constant = DisjunctiveDatalogProgram(
        [Rule((goal_atom(X),), (Atom(EDGE, (X, "c")),))]
    )
    assert "constant" in shardability_violation(constant)


def test_sharded_inconsistency_is_globally_vacuous():
    """One shard's data violating a constraint makes every tuple over the
    *global* domain certain, exactly as the serial engine says."""
    program = DisjunctiveDatalogProgram(
        [
            Rule((), (Atom(A, (X,)),)),
            Rule((goal_atom(X),), (Atom(B, (X,)),)),
        ]
    )
    session = ShardedObdaSession(program, shards=3)
    session.insert_facts([Fact(B, (1,)), Fact(B, (2,))])
    assert session.certain_answers() == frozenset({(1,), (2,)})
    session.insert_facts([Fact(A, (3,))])  # breaks one shard only
    expected = ground_program(program, session.instance).certain_answers()
    assert session.certain_answers() == expected
    assert session.certain_answers() == frozenset({(1,), (2,), (3,)})
    assert session.answer_batch([(1,), (3,), (99,)]) == {
        (1,): True,
        (3,): True,
        (99,): False,
    }
    session.delete_facts([Fact(A, (3,))])
    assert session.certain_answers() == frozenset({(1,), (2,)})


def test_sharded_compact_preserves_answers():
    rng = random.Random(77)
    program = _random_shardable_program(rng, 1)
    session = ShardedObdaSession(program, shards=2)
    universe = _fact_universe([1, 2, 3])
    session.insert_facts(rng.sample(universe, 8))
    session.delete_facts(rng.sample(sorted(session.instance, key=str), 3))
    before = session.certain_answers()
    instance_before = session.instance
    session.compact()
    assert session.instance == instance_before
    assert session.certain_answers() == before


@pytest.mark.parametrize("make_session", [
    lambda program: ObdaSession(program),
    lambda program: ShardedObdaSession(program, shards=2),
])
def test_adversarial_deletion_streams_are_noops(make_session):
    """Deleting facts that were never inserted, double deletions (within a
    batch and across epochs) and duplicate insertions must leave epoch
    counters and answers exactly as if the junk traffic never happened."""
    rules = [
        Rule((Atom(P, (X,)), Atom(Q, (X,))), (adom_atom(X),)),
        Rule((goal_atom(X),), (Atom(Q, (X,)), Atom(EDGE, (X, Y)))),
    ]
    program = DisjunctiveDatalogProgram(rules)
    session = make_session(program)
    ghost = Fact(EDGE, (8, 9))
    live = Fact(EDGE, (1, 2))
    # delete on an empty session: clean no-op
    assert session.delete_facts([ghost]) == 0
    assert session.stats.epoch == 0
    # duplicate insert entries count once
    assert session.insert_facts([live, live, Fact(A, (1,))]) == 2
    epoch = session.stats.epoch
    # deleting unknown facts alongside a real one: only the real one counts
    assert session.delete_facts([ghost, live, live]) == 1
    assert session.stats.epoch == epoch + 1
    # double delete across epochs: no-op, no epoch
    assert session.delete_facts([live]) == 0
    assert session.stats.epoch == epoch + 1
    # re-insert after delete still reactivates cleanly
    assert session.insert_facts([live]) == 1
    expected = ground_program(program, session.instance).certain_answers()
    assert session.certain_answers() == expected
    # retracting a guard the solver never saw is harmless at the SAT layer
    assert session.delete_facts([Fact(EDGE, (5, 6))]) == 0
    assert session.certain_answers() == expected


def test_session_survives_emptying_a_relation():
    """Regression for the ``without_facts`` schema shrink: delete the last
    fact of a relation the compiled query mentions, query, re-insert."""
    rules = [
        Rule((Atom(P, (X,)),), (Atom(A, (X,)), Atom(EDGE, (X, Y)))),
        Rule((goal_atom(X),), (Atom(P, (X,)),)),
    ]
    program = DisjunctiveDatalogProgram(rules)
    session = ObdaSession(program)
    edge = Fact(EDGE, (1, 2))
    session.insert_facts([Fact(A, (1,)), Fact(A, (2,)), edge])
    assert session.certain_answers() == frozenset({(1,)})
    # delete the only edge fact: the relation empties but stays resolvable
    session.delete_facts([edge])
    assert EDGE in session.instance.schema
    assert session.instance.tuples("edge") == frozenset()
    assert session.certain_answers() == frozenset()
    assert session.certain_answers() == ground_program(
        program, session.instance
    ).certain_answers()
    # re-insert: the compiled state comes back identical to from-scratch
    session.insert_facts([edge])
    assert session.certain_answers() == frozenset({(1,)})


def test_medical_workload_session():
    """The Table 1 workload: compile once, stream updates, stay correct."""
    omq = example_2_1_omq()
    program = compile_to_mddlog(omq)
    session = ObdaSession(program, initial_facts=patient_instance().facts)
    assert session.certain_answers() == frozenset(
        {("patient1",), ("patient2",)}
    )
    # the session agrees with the OMQ engines on the same data
    assert session.certain_answers() == omq.certain_answers(patient_instance())
    # batch interface
    decided = session.answer_batch([("patient1",), ("jan12find1",)])
    assert decided == {("patient1",): True, ("jan12find1",): False}
    # a deletion retracts the Lyme-disease chain for patient1
    finding = Fact(RelationSymbol("ErythemaMigrans", 1), ("jan12find1",))
    session.delete_facts([finding])
    assert session.certain_answers() == frozenset({("patient2",)})
    # re-insertion reactivates the retracted epoch's clauses
    session.insert_facts([finding])
    assert session.certain_answers() == frozenset(
        {("patient1",), ("patient2",)}
    )


def test_medical_stream_replay_validates():
    program = compile_to_mddlog(example_2_1_omq())
    events = random_stream(
        medical_universe(patients=3, generations=3), length=12, seed=7, query_every=2
    )
    report = replay(ObdaSession(program), events, validate=True)
    assert report.validated and report.queries > 0


def test_csp_zoo_stream_replay_validates():
    """coCSP(K2) over a churning random graph: non-2-colourability serving."""
    program = csp_to_mddlog(two_colourability_template())
    events = random_stream(graph_universe(6, seed=3), length=30, seed=9)
    session = ObdaSession({"non2col": program})
    report = replay(session, events, validate=True)
    assert report.validated and report.queries == 30


def test_multi_query_workload_shares_the_stream():
    rules_reach = [
        Rule((Atom(P, (X,)),), (Atom(A, (X,)),)),
        Rule((Atom(P, (Y,)),), (Atom(P, (X,)), Atom(EDGE, (X, Y)))),
        Rule((goal_atom(X),), (Atom(P, (X,)),)),
    ]
    guess = [
        Rule((Atom(P, (X,)), Atom(Q, (X,))), (adom_atom(X),)),
        Rule((goal_atom(),), (Atom(P, (X,)), Atom(Q, (X,)))),
    ]
    session = ObdaSession(
        {
            "reach": DisjunctiveDatalogProgram(rules_reach),
            "guess": DisjunctiveDatalogProgram(guess),
        }
    )
    session.insert_facts(
        [Fact(A, (1,)), Fact(EDGE, (1, 2)), Fact(EDGE, (2, 3))]
    )
    answers = session.answer_all()
    assert answers["reach"] == frozenset({(1,), (2,), (3,)})
    for name in session.query_names:
        assert answers[name] == ground_program(
            session.program(name), session.instance
        ).certain_answers()
    with pytest.raises(ValueError):
        session.certain_answers()  # ambiguous without a name
    with pytest.raises(KeyError):
        session.certain_answers("missing")


def test_compact_preserves_answers_and_resets_state():
    rng = random.Random(42)
    program = _random_program(rng, 1)
    session = ObdaSession(program)
    _run_stream(rng, session, _fact_universe([1, 2, 3]), steps=12, check_every=3)
    before = session.certain_answers()
    session.compact()
    assert session.certain_answers() == before
    expected = ground_program(program, session.instance).certain_answers()
    assert before == expected


def test_session_stats_track_epochs():
    program = csp_to_mddlog(two_colourability_template())
    session = ObdaSession(program)
    edge = RelationSymbol("edge", 2)
    session.insert_facts([Fact(edge, ("a", "b"))])
    session.insert_facts([Fact(edge, ("b", "a"))])
    session.delete_facts([Fact(edge, ("a", "b"))])
    assert session.stats.epoch == 3
    assert session.stats.facts_inserted == 2
    assert session.stats.facts_deleted == 1
    assert [entry["op"] for entry in session.stats.epochs] == [
        "insert",
        "insert",
        "delete",
    ]
    # no-op updates do not advance the epoch
    session.insert_facts([Fact(edge, ("b", "a"))])
    session.delete_facts([Fact(edge, ("a", "b"))])
    assert session.stats.epoch == 3


def test_inconsistent_data_makes_every_tuple_certain():
    """Mirrors GroundProgram.certain_answers: no model -> vacuously certain."""
    program = DisjunctiveDatalogProgram(
        [
            Rule((), (Atom(A, (X,)),)),  # data with an A-fact is inconsistent
            Rule((goal_atom(X),), (Atom(B, (X,)),)),
        ]
    )
    session = ObdaSession(program)
    session.insert_facts([Fact(B, (1,))])
    assert session.certain_answers() == frozenset({(1,)})
    session.insert_facts([Fact(A, (2,))])
    assert session.certain_answers() == ground_program(
        program, session.instance
    ).certain_answers()
    assert session.certain_answers() == frozenset({(1,), (2,)})
    # deleting the offending fact restores consistency
    session.delete_facts([Fact(A, (2,))])
    assert session.certain_answers() == frozenset({(1,)})
