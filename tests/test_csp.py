"""Tests for the CSP machinery: templates, polymorphisms, duality,
rewritability and the dichotomy classifier, validated on the classic zoo."""

from hypothesis import given, settings, strategies as st

from repro.core import Fact, Instance, MarkedInstance, RelationSymbol
from repro.csp import (
    NP_HARD,
    PTIME,
    CoCspQuery,
    GeneralizedCoCspQuery,
    MarkedCoCspQuery,
    Template,
    arc_consistency_refutes,
    bounded_obstruction_set,
    canonical_arc_consistency_program,
    classify_template,
    cocsp_datalog_rewritable,
    cocsp_fo_rewritable,
    find_majority_polymorphism,
    find_maltsev_polymorphism,
    find_siggers_polymorphism,
    has_bounded_width_certificate,
    is_fo_definable_csp,
    is_polymorphism,
    k_consistency_refutes,
    obstruction_to_boolean_cq,
    rewriting_agrees_on,
    ucq_rewriting_from_obstructions,
)
from repro.workloads.csp_zoo import (
    ZOO,
    cycle_graph,
    directed_path_template,
    linear_equations_template,
    one_in_three_sat_template,
    random_graph,
    three_colourability_template,
    transitive_tournament_template,
    two_colourability_template,
    two_sat_template,
)

EDGE = RelationSymbol("edge", 2)


def test_template_and_cocsp_query():
    template = Template(two_colourability_template())
    assert template.admits(cycle_graph(4))
    assert not template.admits(cycle_graph(3))
    query = CoCspQuery(template)
    assert query.evaluate(cycle_graph(3))
    assert not query.evaluate(cycle_graph(4))


def test_generalized_cocsp_query():
    query = GeneralizedCoCspQuery([two_colourability_template(), cycle_graph(3)])
    # the triangle maps into C3, so only graphs mapping into neither count
    assert not query.evaluate(cycle_graph(3))
    assert not query.evaluate(cycle_graph(4))
    assert query.evaluate(cycle_graph(5))


def test_marked_cocsp_query():
    template = directed_path_template(2)  # 0 -> 1 -> 2
    marked = MarkedCoCspQuery([MarkedInstance(template, (0,))])
    data = Instance([Fact(EDGE, ("a", "b")), Fact(EDGE, ("b", "c"))])
    answers = marked.evaluate(data)
    # only "a" can be mapped to the start of the path
    assert ("b",) in answers and ("c",) in answers and ("a",) not in answers


def test_siggers_polymorphism_differentiates_k2_and_k3():
    assert find_siggers_polymorphism(two_colourability_template()) is not None
    assert find_siggers_polymorphism(three_colourability_template()) is None


def test_majority_polymorphism_of_two_sat():
    table = find_majority_polymorphism(two_sat_template())
    assert table is not None
    assert is_polymorphism(two_sat_template(), table, 3)


def test_maltsev_polymorphism_of_linear_equations():
    table = find_maltsev_polymorphism(linear_equations_template())
    assert table is not None
    assert is_polymorphism(linear_equations_template(), table, 3)


def test_bounded_width_certificates():
    assert has_bounded_width_certificate(two_colourability_template())
    assert has_bounded_width_certificate(two_sat_template())
    assert not has_bounded_width_certificate(three_colourability_template())


def test_fo_definability_of_zoo_templates():
    # Transitive tournaments have finite duality (Gallai–Roy); a single edge is TT_2.
    assert is_fo_definable_csp(transitive_tournament_template(3))
    assert is_fo_definable_csp(directed_path_template(1))
    # The length-2 path admits the non-tree obstruction {a→b, b→c, a→c}.
    assert not is_fo_definable_csp(directed_path_template(2))
    assert not is_fo_definable_csp(two_colourability_template())
    assert not is_fo_definable_csp(three_colourability_template())


def test_dichotomy_classifier_matches_textbook_complexities():
    for name, entry in ZOO.items():
        template = entry["template"]()
        report = classify_template(template, check_rewritability=False)
        expected = PTIME if entry["tractable"] else NP_HARD
        assert report.complexity == expected, name


def test_rewritability_flags_match_zoo():
    for name in (
        "directed-path",
        "transitive-tournament",
        "3-colourability",
        "2-colourability",
    ):
        entry = ZOO[name]
        template = entry["template"]()
        assert cocsp_fo_rewritable(template) == entry["fo"], name
        assert cocsp_datalog_rewritable(template) == entry["datalog"], name


def test_linear_equations_not_datalog_rewritable():
    assert not cocsp_datalog_rewritable(linear_equations_template())
    assert not cocsp_fo_rewritable(linear_equations_template())


def test_obstruction_set_of_directed_path():
    template = directed_path_template(1)  # a single edge 0 -> 1
    obstructions = bounded_obstruction_set(template, max_elements=3, max_facts=2)
    # the critical obstruction is the path of length 2
    assert any(len(o) == 2 for o in obstructions)
    rewriting = ucq_rewriting_from_obstructions(obstructions)
    data_instances = [cycle_graph(3), Instance([Fact(EDGE, (0, 1))])]
    assert rewriting_agrees_on(template, rewriting, data_instances)


def test_obstruction_to_cq():
    cq = obstruction_to_boolean_cq(cycle_graph(3))
    assert cq.arity == 0
    assert len(cq.atoms) == 3


def test_arc_consistency_refutation():
    template = two_colourability_template()
    assert arc_consistency_refutes(template, Instance([Fact(EDGE, ("a", "a"))]))
    assert not arc_consistency_refutes(template, cycle_graph(3))  # AC alone is blind here
    assert k_consistency_refutes(template, cycle_graph(3), k=2)


def test_canonical_arc_consistency_program_is_sound():
    template = two_colourability_template()
    program = canonical_arc_consistency_program(template)
    assert program.evaluate_boolean(Instance([Fact(EDGE, ("a", "a"))]))
    assert not program.evaluate_boolean(cycle_graph(4))


def test_classification_report_fields():
    report = classify_template(two_colourability_template())
    assert report.is_tractable()
    assert report.bounded_width
    assert not report.fo_definable
    hard = classify_template(one_in_three_sat_template(), check_rewritability=False)
    assert not hard.is_tractable()


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=100))
def test_two_colourability_matches_arc_plus_k_consistency(size, seed):
    """Property: for random graphs, (2,3)-consistency decides 2-colourability
    (K2 has bounded width)."""
    graph = random_graph(size, 0.5, seed=seed)
    if graph.is_empty():
        return
    from repro.core import has_homomorphism

    expected = not has_homomorphism(graph, two_colourability_template())
    assert k_consistency_refutes(two_colourability_template(), graph, k=2) == expected
