"""Tests for DL concepts, ontologies, the FO translation and the reasoner."""

import pytest

from repro.core import Fact, Instance, RelationSymbol, Schema
from repro.dl import (
    Bottom,
    ConceptInclusion,
    ConceptName,
    Exists,
    Forall,
    FunctionalRole,
    Not,
    Ontology,
    Or,
    Role,
    RoleInclusion,
    Top,
    TransitiveRole,
    UnsupportedOntologyError,
    concept_satisfiable,
    concept_subsumed,
    concept_to_fo,
    eliminate_inverse_roles,
    eliminate_role_hierarchies,
    eliminate_transitive_roles,
    fo_models_ontology,
    instance_consistent,
    inverse,
    is_in_nnf,
    ontology_consistent,
    shi_to_alc,
)
from repro.fo import is_gfo, is_unfo
from repro.workloads.medical import medical_ontology, patient_instance

A, B, C = ConceptName("A"), ConceptName("B"), ConceptName("C")
R = Role("R")


def test_concept_construction_and_size():
    concept = Exists(R, A & B) | Forall(R, ~C)
    assert "∃R" in str(concept)
    assert concept.size() == 8
    assert concept.concept_names() == {"A", "B", "C"}
    assert concept.role_names() == {"R"}


def test_nnf_and_negation():
    concept = Not(Exists(R, A & B))
    nnf = concept.nnf()
    assert is_in_nnf(nnf)
    assert nnf == Forall(R, Or(Not(A), Not(B)))
    assert Not(Not(A)).nnf() == A
    assert Top().negate() == Bottom()


def test_inverse_and_universal_roles():
    assert inverse("R").is_inverse()
    assert inverse(inverse("R")) == R
    assert str(inverse("R")) == "R-"


def test_ontology_dialect_detection():
    assert medical_ontology().dialect() == "ALC"
    with_inverse = Ontology([ConceptInclusion(Exists(inverse("R"), A), B)])
    assert with_inverse.dialect() == "ALCI"
    shiu = Ontology(
        [
            TransitiveRole(R),
            RoleInclusion(Role("S"), R),
            ConceptInclusion(Exists(inverse("S"), A), B),
        ]
    )
    assert shiu.dialect() == "SHI"
    assert shiu.is_in_dialect("SHIU")
    assert not shiu.is_in_dialect("ALC")
    alcf = Ontology([FunctionalRole(R)])
    assert alcf.dialect() == "ALCF"


def test_ontology_signature_and_size():
    ontology = medical_ontology()
    signature = ontology.signature()
    assert "LymeDisease" in signature
    assert "HasParent" in signature
    assert ontology.size() > 0


def test_super_roles_closure():
    ontology = Ontology(
        [RoleInclusion(Role("R"), Role("S")), RoleInclusion(Role("S"), Role("T"))]
    )
    supers = ontology.super_roles(Role("R"))
    assert {r.name for r in supers} == {"R", "S", "T"}
    assert Role("T") in ontology.super_roles(Role("S"))


def test_fo_translation_matches_table_2():
    formula = concept_to_fo(Exists(R, A))
    assert "∃" in str(formula) and "R(" in str(formula)
    assert is_unfo(formula)
    # The translation of an ALC ontology lands in UNFO and GFO.
    from repro.dl import inclusion_to_fo

    for axiom in medical_ontology().concept_inclusions():
        sentence = inclusion_to_fo(axiom)
        assert is_unfo(sentence)
        assert is_gfo(sentence)


def test_fo_semantics_of_ontology():
    data = patient_instance()
    # The raw patient data is not a model (patient1 lacks the diagnosis), but
    # adding the required facts repairs it.
    assert not fo_models_ontology(data, medical_ontology())
    repaired = data.with_facts(
        [
            Fact(RelationSymbol("HasDiagnosis", 2), ("patient1", "d")),
            Fact(RelationSymbol("LymeDisease", 1), ("d",)),
            Fact(RelationSymbol("BacterialInfection", 1), ("d",)),
            Fact(RelationSymbol("BacterialInfection", 1), ("may7diag2",)),
        ]
    )
    assert fo_models_ontology(repaired, medical_ontology())


def test_concept_satisfiability():
    ontology = Ontology([ConceptInclusion(A, B)])
    assert concept_satisfiable(A, ontology)
    assert not concept_satisfiable(A & Not(B), ontology)
    assert concept_subsumed(A, B, ontology)
    assert not concept_subsumed(B, A, ontology)
    assert ontology_consistent(ontology)


def test_unsatisfiable_existential_chain():
    ontology = Ontology([ConceptInclusion(A, Exists(R, A) & Forall(R, Bottom()))])
    assert not concept_satisfiable(A, ontology)


def test_instance_consistency():
    ontology = Ontology([ConceptInclusion(A & B, Bottom())])
    consistent = Instance([Fact(RelationSymbol("A", 1), ("a",))])
    inconsistent = consistent.with_facts([Fact(RelationSymbol("B", 1), ("a",))])
    assert instance_consistent(consistent, ontology)
    assert not instance_consistent(inconsistent, ontology)
    assert instance_consistent(patient_instance(), medical_ontology())


def test_value_restriction_propagates_over_abox_edges():
    ontology = Ontology([ConceptInclusion(A, Forall(R, Bottom()))])
    data = Instance(
        [Fact(RelationSymbol("A", 1), ("a",)), Fact(RelationSymbol("R", 2), ("a", "b"))]
    )
    assert not instance_consistent(data, ontology)


def test_reasoner_rejects_unsupported_ontologies():
    with pytest.raises(UnsupportedOntologyError):
        concept_satisfiable(A, Ontology([FunctionalRole(R)]))


def test_inverse_role_elimination_preserves_aq_answers():
    ontology = Ontology([ConceptInclusion(Exists(inverse("R"), A), B)])
    rewritten, _ = eliminate_inverse_roles(ontology)
    assert not rewritten.uses_inverse_roles()
    # A(a), R(a, b) entails B(b): after elimination the entailment must survive.
    data = Instance(
        [Fact(RelationSymbol("A", 1), ("a",)), Fact(RelationSymbol("R", 2), ("a", "b"))]
    )
    from repro.omq import OntologyMediatedQuery
    from repro.core import atomic_query

    omq = OntologyMediatedQuery(
        ontology=rewritten,
        query=atomic_query("B"),
        data_schema=Schema.binary(["A", "B"], ["R"]),
    )
    assert omq.certain_answers(data) == {("b",)}


def test_transitive_role_elimination():
    ontology = Ontology(
        [TransitiveRole(R), ConceptInclusion(Exists(R, A), B)]
    )
    rewritten = eliminate_transitive_roles(ontology)
    assert not rewritten.uses_transitive_roles()
    assert rewritten.concept_inclusions()


def test_role_hierarchy_elimination_requires_no_inverse():
    ontology = Ontology(
        [RoleInclusion(inverse("R"), Role("S")), ConceptInclusion(Exists(R, A), B)]
    )
    with pytest.raises(ValueError):
        eliminate_role_hierarchies(ontology)


def test_shi_to_alc_pipeline():
    ontology = Ontology(
        [
            TransitiveRole(R),
            RoleInclusion(Role("S"), R),
            ConceptInclusion(Exists(Role("S"), A), B),
        ]
    )
    rewritten = shi_to_alc(ontology)
    assert rewritten.dialect() == "ALC"
