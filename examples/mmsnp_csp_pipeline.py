"""Descriptive complexity pipeline: OMQ → MDDlog → MMSNP → CSP.

The paper's central message is that ontology-mediated queries, disjunctive
datalog, MMSNP and CSPs are four views of the same objects.  This example
walks one query through all four views:

1. the hereditary-predisposition query of Example 2.2 / 4.5 as an (ALC, AQ)
   ontology-mediated query;
2. its unary connected simple MDDlog program (Theorem 3.4);
3. the MMSNP formula defined by that program (Proposition 4.1), including the
   sentence encoding of Proposition 5.2;
4. the marked CSP template of Theorem 4.6, used to decide FO- and
   datalog-rewritability (Theorem 5.16).

Run with:  python examples/mmsnp_csp_pipeline.py
"""

from repro.datalog import evaluate
from repro.mmsnp import CoMMSNPQuery, formula_to_sentence
from repro.obda import classify_omq
from repro.translations import (
    alc_aq_to_mddlog,
    mddlog_to_mmsnp,
    omq_to_csp,
)
from repro.workloads.medical import example_4_5_omq, family_instance


def main() -> None:
    omq = example_4_5_omq()
    data = family_instance(generations=3, predisposed_root=True)
    print("== 1. The ontology-mediated query", omq.omq_language())
    print("   ontology axioms:", len(omq.ontology), "| query:", omq.query)
    answers = omq.certain_answers(data)
    print("   certain answers on a 3-generation family:", sorted(a[0] for a in answers))

    print("\n== 2. The MDDlog view (Theorem 3.4)")
    program = alc_aq_to_mddlog(omq)
    print(f"   program: {len(program)} rules, size {program.size()}, "
          f"monadic={program.is_monadic()}, connected={program.is_connected()}, "
          f"simple={program.is_simple()}")
    datalog_answers = evaluate(program, data)
    print("   DDlog certain answers agree:", datalog_answers == answers)

    print("\n== 3. The MMSNP view (Propositions 4.1 and 5.2)")
    formula = mddlog_to_mmsnp(program)
    print(f"   formula: {len(formula.so_variables)} SO variables, "
          f"{len(formula.implications)} implications, free variables "
          f"{[str(v) for v in formula.free_variables]}")
    small = family_instance(generations=1, predisposed_root=True)
    query = CoMMSNPQuery(formula)
    print("   coMMSNP answers on a 1-generation family:",
          sorted(a[0] for a in query.evaluate(small)))
    sentence, markers = formula_to_sentence(formula)
    print(f"   Proposition 5.2 sentence encoding uses markers "
          f"{[str(m.name) for m in markers]} and has size {sentence.size()}")

    print("\n== 4. The CSP view (Theorems 4.6 and 5.16)")
    encoding = omq_to_csp(omq)
    print(f"   {len(encoding.marked_templates)} marked template(s); "
          f"template domain sizes: "
          f"{[len(t.instance.active_domain) for t in encoding.marked_templates]}")
    report = classify_omq(omq)
    print(f"   data complexity: {report.complexity}; "
          f"FO-rewritable: {report.fo_rewritable}; "
          f"datalog-rewritable: {report.datalog_rewritable}")
    print("   (the paper's Example 2.2: recursive but datalog-rewritable, "
          "hence not FO-rewritable)")


if __name__ == "__main__":
    main()
