"""Tour: sharded and worker-pool parallel certain-answer serving.

The Theorem 3.3 reduction (ontology-mediated query -> one disjunctive
datalog program) leaves every candidate answer tuple independently
decidable, and the data itself splits into connected components that never
interact under connected, constant-free programs.  This tour drives both
parallel layers built on those observations:

1. a :class:`ShardedObdaSession` consistent-hash-partitions the Table 1
   medical fact stream across per-shard compiled sessions and merges their
   certain answers — identical to a single session, but every shard grounds
   and solves a fraction of the data;
2. a :class:`ParallelEvaluator` dispatches candidate-tuple decisions in
   chunks across a persistent worker pool whose workers replicate the
   ground program (with learned-clause summaries fed back between chunks).

Run with ``PYTHONPATH=src python examples/parallel_obda.py``.
"""

import time

from repro.core.instance import Instance
from repro.engine import ParallelEvaluator, ground_program
from repro.omq.certain import compile_to_mddlog
from repro.service import (
    ObdaSession,
    ShardedObdaSession,
    is_shardable,
    medical_universe,
)
from repro.workloads.medical import example_2_1_omq


def main() -> None:
    print("== compile the Table 1 workload once ==")
    program = compile_to_mddlog(example_2_1_omq())
    print(
        f"bacterial-infection UCQ -> MDDlog: {len(program.rules)} rules, "
        f"shardable={is_shardable(program)}"
    )
    universe = medical_universe(patients=10, generations=6)
    print(f"fact universe: {len(universe)} facts")

    print("\n== 1. sharded serving ==")
    single = ObdaSession({"q1": program})
    sharded = ShardedObdaSession({"q1": program}, shards=4)

    def serve(session):
        started = time.perf_counter()
        session.insert_facts(universe)
        answers = [session.certain_answers("q1")]
        victims = sorted(universe, key=str)[::5]
        for fact in victims:  # churn: delete, re-answer, restore, re-answer
            session.delete_facts([fact])
            answers.append(session.certain_answers("q1"))
            session.insert_facts([fact])
            answers.append(session.certain_answers("q1"))
        return answers, time.perf_counter() - started

    single_answers, single_s = serve(single)
    sharded_answers, sharded_s = serve(sharded)
    assert sharded_answers == single_answers, "sharded answers must be identical"
    print(f"1 shard : {single_s:.2f}s")
    print(
        f"4 shards: {sharded_s:.2f}s ({single_s / sharded_s:.2f}x), "
        f"shard sizes {sharded.shard_sizes()}, "
        f"{sharded.stats.facts_migrated} facts migrated between shards"
    )
    patients = sorted(a[0] for a in sharded.certain_answers("q1"))
    print(f"certain bacterial-infection patients: {patients}")

    print("\n== 2. worker-pool candidate decision ==")
    instance = Instance(universe)
    ground = ground_program(program, instance)
    serial_started = time.perf_counter()
    serial = ground.certain_answers()
    serial_s = time.perf_counter() - serial_started
    pool_started = time.perf_counter()
    with ParallelEvaluator(ground, workers=2, chunk_size=8) as evaluator:
        parallel = evaluator.certain_answers()
    pool_s = time.perf_counter() - pool_started
    assert parallel == serial, "worker-pool answers must be identical"
    print(
        f"{len(list(instance.active_domain))} candidates: serial {serial_s:.2f}s, "
        f"2-worker pool {pool_s:.2f}s (worker pools trade process overhead "
        "for cores; on a single-core host the sharded path is the win)"
    )
    print(f"both engines agree on {len(serial)} certain answers")


if __name__ == "__main__":
    main()
