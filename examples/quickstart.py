"""Quickstart: ontology-based data access with the paper's medical example.

Builds the ontology of Table I, the patient data of Example 2.1, and asks the
ontology-mediated query "return all patients with a bacterial infection
diagnosis".  Both patients are certain answers even though neither has the
diagnosis asserted explicitly — the ontology supplies the missing knowledge.

Run with:  python examples/quickstart.py
"""

from repro import OntologyMediatedQuery
from repro.core import Atom, ConjunctiveQuery, Instance, RelationSymbol, Schema, Variable
from repro.dl import ConceptInclusion, ConceptName, Exists, Ontology, Role


def build_ontology() -> Ontology:
    """The medical ontology of Table I, written with the library's DL API."""
    has_finding = Role("HasFinding")
    has_diagnosis = Role("HasDiagnosis")
    has_parent = Role("HasParent")
    return Ontology(
        [
            # A finding of Erythema Migrans suffices for a Lyme disease diagnosis.
            ConceptInclusion(
                Exists(has_finding, ConceptName("ErythemaMigrans")),
                Exists(has_diagnosis, ConceptName("LymeDisease")),
            ),
            # Lyme disease and Listeriosis are bacterial infections.
            ConceptInclusion(
                ConceptName("LymeDisease") | ConceptName("Listeriosis"),
                ConceptName("BacterialInfection"),
            ),
            # Hereditary predispositions propagate from parents.
            ConceptInclusion(
                Exists(has_parent, ConceptName("HereditaryPredisposition")),
                ConceptName("HereditaryPredisposition"),
            ),
        ]
    )


def build_data(schema: Schema) -> Instance:
    """The patient database of Example 2.1."""
    return Instance.from_tuples(
        schema,
        {
            "HasFinding": [("patient1", "jan12find1")],
            "ErythemaMigrans": [("jan12find1",)],
            "HasDiagnosis": [("patient2", "may7diag2")],
            "Listeriosis": [("may7diag2",)],
        },
    )


def main() -> None:
    schema = Schema.binary(
        concept_names=[
            "ErythemaMigrans",
            "LymeDisease",
            "Listeriosis",
            "HereditaryPredisposition",
        ],
        role_names=["HasFinding", "HasDiagnosis", "HasParent"],
    )
    ontology = build_ontology()
    data = build_data(schema)

    # q(x) = ∃y (HasDiagnosis(x, y) ∧ BacterialInfection(y))
    x, y = Variable("x"), Variable("y")
    query = ConjunctiveQuery(
        (x,),
        [
            Atom(RelationSymbol("HasDiagnosis", 2), (x, y)),
            Atom(RelationSymbol("BacterialInfection", 1), (y,)),
        ],
    )
    omq = OntologyMediatedQuery(ontology=ontology, query=query, data_schema=schema)

    print("Ontology-mediated query", omq.omq_language())
    print("Data:")
    for fact in sorted(data, key=str):
        print("   ", fact)
    answers = omq.certain_answers(data)
    print("\nCertain answers to 'patients with a bacterial infection diagnosis':")
    for (patient,) in sorted(answers):
        print("   ", patient)
    print("\nWithout the ontology the same query returns:")
    print("   ", sorted(query.evaluate(data)) or "nothing")


if __name__ == "__main__":
    main()
