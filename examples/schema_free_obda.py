"""Schema-free ontology-based data access (Section 6).

A data-integration scenario: the data is harvested from sources that are not
under the user's control, so no fixed data schema can be assumed — facts may
mention arbitrary relation symbols, including symbols the ontology designer
intended as internal bookkeeping.  Section 6 of the paper shows that the
decidability and complexity landscape survives this setting; the key device is
to *shield* working concept names so stray data cannot interfere with them.

The example builds the schema-free (ALC, BAQ) query of Theorem 6.1 for a
2-colourability template and shows that its answers match the CSP view even
when the data mentions the construction's working symbols.

Run with:  python examples/schema_free_obda.py
"""

from repro.core import Fact, Instance, RelationSymbol
from repro.core.homomorphism import has_homomorphism
from repro.obda import csp_to_schema_free_omq, shield_concept_names
from repro.workloads.csp_zoo import EDGE, cycle_graph, two_colourability_template
from repro.workloads.medical import example_2_2_q2_omq


def main() -> None:
    template = two_colourability_template()
    encoding = csp_to_schema_free_omq(template)
    print("== Theorem 6.1: 2-colourability as a schema-free (ALC, BAQ) query")
    print(f"   ontology axioms: {len(encoding.omq.ontology)}; "
          f"query: {encoding.omq.query}; schema-free: {encoding.omq.schema_free}")

    probes = {
        "odd cycle C3 (not 2-colourable)": cycle_graph(3),
        "even cycle C4 (2-colourable)": cycle_graph(4),
        "self-loop": Instance([Fact(EDGE, ("a", "a"))]),
    }
    for label, data in probes.items():
        cocsp = not has_homomorphism(data, template)
        omq_answer = encoding.omq.certain_answers(data, engine="bounded") == frozenset({()})
        print(f"   {label:35s}  coCSP = {int(cocsp)}   schema-free OMQ = {int(omq_answer)}")

    print("\n== Stray data about working symbols does not change the answers")
    noisy = cycle_graph(4).with_facts(
        [
            Fact(RelationSymbol("A_elem_0", 1), ("v0",)),
            Fact(RelationSymbol("R_elem_1", 2), ("v1", "v2")),
        ]
    )
    answer = encoding.omq.certain_answers(noisy, engine="bounded")
    print(f"   noisy C4 (mentions A_elem_0 / R_elem_1): certain answers = {set(answer)}")
    print("   -> still empty: the shielded concepts re-interpret freely (Fact 1).")

    print("\n== Theorem 6.3: shielding an existing ontology")
    ontology = example_2_2_q2_omq().ontology
    shielded = shield_concept_names(ontology, {"HereditaryPredisposition"})
    for axiom in shielded:
        print("   ", axiom)


if __name__ == "__main__":
    main()
