"""Rewriting an ontology-mediated query into disjunctive datalog (Theorem 3.3/3.4).

Translates the medical UCQ of Example 2.1 and the atomic query of Example 4.5
into equivalent (monadic) disjunctive datalog programs, evaluates both the
original OMQs and the rewritten programs on the same data, and shows the
round trip back from MDDlog to an ontology-mediated query.

Run with:  python examples/disjunctive_datalog_rewriting.py
"""

from repro.datalog import evaluate
from repro.translations import (
    alc_aq_to_mddlog,
    alc_ucq_to_mddlog,
    mddlog_to_alc_ucq,
)
from repro.workloads.medical import (
    example_2_1_omq,
    example_4_5_omq,
    family_instance,
    patient_instance,
)


def main() -> None:
    # (ALC, UCQ) -> MDDlog (Theorem 3.3)
    omq = example_2_1_omq()
    program = alc_ucq_to_mddlog(omq)
    data = patient_instance()
    print("Theorem 3.3: (ALC, UCQ) -> MDDlog")
    print(f"   query size {omq.size()}  ->  program size {program.size()} ({len(program)} rules)")
    print("   certain answers (OMQ engine):   ", sorted(omq.certain_answers(data)))
    print("   certain answers (MDDlog engine):", sorted(evaluate(program, data)))

    # (ALC, AQ) -> unary connected simple MDDlog (Theorem 3.4)
    atomic = example_4_5_omq()
    atomic_program = alc_aq_to_mddlog(atomic)
    chain = family_instance(3, predisposed_root=True)
    print("\nTheorem 3.4: (ALC, AQ) -> unary connected simple MDDlog")
    print(
        f"   unary={atomic_program.is_unary()}  connected={atomic_program.is_connected()}  "
        f"simple={atomic_program.is_simple()}"
    )
    print("   certain answers (OMQ engine):   ", sorted(atomic.certain_answers(chain)))
    print("   certain answers (MDDlog engine):", sorted(evaluate(atomic_program, chain)))

    # MDDlog -> (ALC, UCQ): the linear converse direction.
    rebuilt = mddlog_to_alc_ucq(program)
    print("\nTheorem 3.3 (2): MDDlog -> (ALC, UCQ)")
    print(f"   program size {program.size()}  ->  OMQ size {rebuilt.size()}")
    print("   rebuilt OMQ language:", rebuilt.omq_language())


if __name__ == "__main__":
    main()
