"""Serving an OMQ workload under streaming updates (the repro.service layer).

The paper's pipeline — translate an ontology-mediated query to monadic
disjunctive datalog (Theorem 3.3) and answer by certain answers — is
usually run one-shot.  This example runs it as a *server*: the Table 1
medical workload is compiled once into an ObdaSession, facts stream in and
out, and certain answers are maintained incrementally — delta grounding
into a persistent CDCL solver whose clauses are guarded by assumption
literals (insertion pushes only newly justified clauses, deletion merely
retracts guards), and a DRed-maintained fixpoint for the datalog-rewritable
recursive query.
"""

from repro.core import Fact, RelationSymbol
from repro.core.cq import Atom, Variable
from repro.datalog.ddlog import DisjunctiveDatalogProgram, Rule, goal_atom
from repro.omq.certain import compile_to_mddlog
from repro.service import ObdaSession, from_scratch_answers
from repro.workloads.medical import example_2_1_omq, patient_instance

HAS_FINDING = RelationSymbol("HasFinding", 2)
HAS_DIAGNOSIS = RelationSymbol("HasDiagnosis", 2)
HAS_PARENT = RelationSymbol("HasParent", 2)
ERYTHEMA = RelationSymbol("ErythemaMigrans", 1)
PREDISPOSITION = RelationSymbol("HereditaryPredisposition", 1)


def predisposition_rewriting() -> DisjunctiveDatalogProgram:
    """Example 2.2's datalog rewriting of the recursive q2."""
    derived = RelationSymbol("P__derived", 1)
    x, y = Variable("x"), Variable("y")
    return DisjunctiveDatalogProgram(
        [
            Rule((Atom(derived, (x,)),), (Atom(PREDISPOSITION, (x,)),)),
            Rule(
                (Atom(derived, (x,)),),
                (Atom(HAS_PARENT, (x, y)), Atom(derived, (y,))),
            ),
            Rule((goal_atom(x),), (Atom(derived, (x,)),)),
        ]
    )


def main() -> None:
    print("== compile the workload once ==")
    omq = example_2_1_omq()
    q1 = compile_to_mddlog(omq)  # (ALC, UCQ) -> MDDlog, Theorem 3.3
    q2 = predisposition_rewriting()
    print(f"q1 (bacterial infection UCQ): {len(q1)} MDDlog rules")
    print(f"q2 (hereditary predisposition, datalog rewriting): {len(q2)} rules")

    session = ObdaSession(
        {"q1": q1, "q2": q2}, initial_facts=patient_instance().facts
    )
    print(f"\n== epoch {session.stats.epoch}: the paper's instance ==")
    print("q1 answers:", sorted(session.certain_answers("q1")))

    print("\n== a new patient streams in ==")
    session.insert_facts(
        [
            Fact(HAS_FINDING, ("patient3", "jul30find9")),
            Fact(ERYTHEMA, ("jul30find9",)),
            Fact(HAS_DIAGNOSIS, ("patient3", "jul30diag9")),
        ]
    )
    print("q1 answers:", sorted(session.certain_answers("q1")))

    print("\n== the finding is retracted (wrong chart) ==")
    session.delete_facts([Fact(ERYTHEMA, ("jul30find9",))])
    print("q1 answers:", sorted(session.certain_answers("q1")))

    print("\n== an ancestry chain arrives for q2 ==")
    session.insert_facts(
        [Fact(HAS_PARENT, (f"gen{i}", f"gen{i + 1}")) for i in range(4)]
        + [Fact(PREDISPOSITION, ("gen4",))]
    )
    print("q2 answers:", sorted(session.certain_answers("q2")))

    print("\n== deleting one link splits the chain ==")
    session.delete_facts([Fact(HAS_PARENT, ("gen1", "gen2"))])
    print("q2 answers:", sorted(session.certain_answers("q2")))

    print("\n== bookkeeping ==")
    stats = session.stats
    print(
        f"{stats.epoch} epochs, {stats.facts_inserted} facts in, "
        f"{stats.facts_deleted} out, {stats.clauses_pushed} ground clauses "
        f"pushed incrementally"
    )
    for name in session.query_names:
        fresh = from_scratch_answers(session, name)
        live = session.certain_answers(name)
        marker = "ok" if fresh == live else "MISMATCH"
        print(f"cross-check {name}: warm == from-scratch? {marker}")
        assert fresh == live


if __name__ == "__main__":
    main()
