"""From an ontology-mediated query to a CSP and back (Sections 4 and 5).

Takes the hereditary-predisposition query of Example 4.5, builds the CSP
template whose complement defines it (Theorem 4.6), classifies its data
complexity with the algebraic dichotomy criterion (Theorem 5.1), and decides
FO- and datalog-rewritability (Theorem 5.16).

Run with:  python examples/csp_connection.py
"""

from repro.csp import classify_template
from repro.csp.rewritability import marked_template_expansion
from repro.obda import classify_omq, omq_datalog_rewritable, omq_fo_rewritable
from repro.translations import omq_to_csp
from repro.workloads.medical import example_4_5_omq, family_instance


def main() -> None:
    omq = example_4_5_omq()
    print("Ontology-mediated query", omq.omq_language())
    print("Ontology:")
    for axiom in omq.ontology:
        print("   ", axiom)

    # Theorem 4.6: the query corresponds to a generalized coCSP with one marked element.
    encoding = omq_to_csp(omq)
    print(f"\nTheorem 4.6 encoding: {len(encoding.marked_templates)} marked template(s)")
    template = encoding.marked_templates[0].instance
    print(f"Template: {len(template.active_domain)} ontology types, {len(template)} facts")

    # The two sides agree on data.
    data = family_instance(3, predisposed_root=True)
    cocsp = encoding.as_cocsp_query()
    print("\nCertain answers on a four-generation family chain:")
    print("   via the certain-answer engine:", sorted(omq.certain_answers(data)))
    print("   via the coCSP encoding:       ", sorted(cocsp.evaluate(data)))

    # Theorem 5.1 / 5.16: classification and rewritability.
    expanded = marked_template_expansion(encoding.marked_templates[0])
    report = classify_template(expanded)
    print("\nAlgebraic classification of the template CSP:")
    print("   complexity:        ", report.complexity)
    print("   witnesses:         ", "; ".join(report.witnesses))
    omq_report = classify_omq(omq)
    print("\nOMQ-level report (Theorem 5.16):")
    print("   data complexity:   ", omq_report.complexity)
    print("   FO-rewritable:     ", omq_fo_rewritable(omq), "(the paper: no — recursion needed)")
    print("   datalog-rewritable:", omq_datalog_rewritable(omq), "(the paper: yes — Example 2.2's program)")


if __name__ == "__main__":
    main()
