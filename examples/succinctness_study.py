"""Succinctness of ontology-mediated queries versus disjunctive datalog.

Section 3 of the paper shows that OMQs can be *exponentially more succinct*
than equivalent (monadic) disjunctive datalog programs, while the reverse
translation is linear, and that inverse roles buy another exponential factor
(Theorems 3.5–3.8).  This example prints the measured curves for the
constructive translations implemented in the library.

Run with:  python examples/succinctness_study.py
"""

from repro.obda import (
    aq_to_mddlog_curve,
    classify_growth,
    inverse_elimination_curve,
    mddlog_to_omq_curve,
)
from repro.workloads.counting import succinctness_measurements


def show(label: str, curve) -> None:
    print(f"\n{label}")
    print("    i    |source|    |target|")
    for point in curve:
        print(f"    {point.parameter:<4d} {point.source_size:<11d} {point.target_size}")
    print(f"    growth shape: {classify_growth(curve)}")


def main() -> None:
    print("== Theorem 3.4 / 3.5: (ALC, AQ)  ->  MDDlog (forward: exponential)")
    show("forward translation", aq_to_mddlog_curve(range(1, 6)))

    print("\n== Theorem 3.4 (2): MDDlog  ->  (ALC, AQ) (reverse: linear)")
    show("reverse translation", mddlog_to_omq_curve(range(1, 9)))

    print("\n== Theorem 3.6: eliminating inverse roles (polynomial per axiom)")
    show("ALCI -> ALC ontology rewriting", inverse_elimination_curve(range(1, 8)))

    print("\n== Theorem 3.7 / Figure 1: inverse roles buy succinctness on counting instances")
    rows = succinctness_measurements(8)
    print("    k    |ALCI query|    |inverse-free query|")
    for row in rows:
        print(f"    {row['k']:<4d} {row['alci_size']:<14d} {row['inverse_free_size']}")


if __name__ == "__main__":
    main()
