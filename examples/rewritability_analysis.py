"""Deciding FO- and datalog-rewritability across a landscape of queries.

Walks the CSP zoo (2-colourability, 3-colourability, paths, Horn-SAT, linear
equations) and the paper's medical queries, reporting for each: the data
complexity classification, FO-rewritability, datalog-rewritability, and —
where a rewriting exists — a concrete rewriting (an obstruction-set UCQ or the
canonical arc-consistency datalog program).  This is the Section 5.3 pipeline
end to end.

Run with:  python examples/rewritability_analysis.py
"""

from repro.csp import (
    bounded_obstruction_set,
    canonical_arc_consistency_program,
    classify_template,
    cocsp_datalog_rewritable,
    cocsp_fo_rewritable,
    ucq_rewriting_from_obstructions,
)
from repro.obda import classify_omq
from repro.workloads.csp_zoo import ZOO
from repro.workloads.medical import example_2_2_q1_omq, example_4_5_omq


def analyse_zoo() -> None:
    print("CSP template zoo (Theorem 5.10 decisions)")
    print(f"{'template':24s} {'complexity':10s} {'FO':>5s} {'datalog':>8s}")
    for name, entry in sorted(ZOO.items()):
        template = entry["template"]()
        report = classify_template(template, check_rewritability=False)
        fo = cocsp_fo_rewritable(template)
        datalog = cocsp_datalog_rewritable(template)
        print(f"{name:24s} {report.complexity:10s} {str(fo):>5s} {str(datalog):>8s}")


def analyse_medical_queries() -> None:
    print("\nOntology-mediated queries (Theorem 5.16 decisions)")
    for label, omq in [
        ("Example 2.2 q1 (BacterialInfection)", example_2_2_q1_omq()),
        ("Example 2.2 q2 / 4.5 (HereditaryPredisposition)", example_4_5_omq()),
    ]:
        report = classify_omq(omq)
        print(f"  {label}")
        print(
            f"     complexity={report.complexity}  FO={report.fo_rewritable}  "
            f"datalog={report.datalog_rewritable}"
        )


def show_concrete_rewritings() -> None:
    print("\nConcrete rewritings (Section 5.3 constructions)")
    template = ZOO["directed-path"]["template"]()
    obstructions = bounded_obstruction_set(template, 3, 2)
    rewriting = ucq_rewriting_from_obstructions(obstructions)
    print(f"  coCSP(directed path): FO-rewriting with {len(rewriting)} disjunct(s):")
    for cq in rewriting:
        print("     ", cq)
    program = canonical_arc_consistency_program(ZOO["2-colourability"]["template"]())
    print(
        f"  coCSP(K2): canonical datalog rewriting with {len(program)} rules "
        f"over {len(program.idb_relations)} IDB predicates"
    )


def main() -> None:
    analyse_zoo()
    analyse_medical_queries()
    show_concrete_rewritings()


if __name__ == "__main__":
    main()
